//! Prebuilt experiment rigs for the paper's scenarios.
//!
//! These functions assemble the platforms the experiments and examples run
//! on, so benches, tests and examples share one definition of each rig:
//!
//! * [`latency_hiding`] — the F6 rig: one multithreaded PE calling a remote
//!   service across a configurable-latency link; reports core utilization.
//! * [`ipv4_rig`] — the T3/T6 rig: the §7.2 scenario, an IPv4 fast path on
//!   a many-PE FPPA fed by a 10 Gb/s worst-case line.
//! * [`video_rig`] / [`modem_rig`] / [`crypto_rig`] — the T8/T9/T10 rigs:
//!   the §7.1 application workloads from `nw-apps` (frame-sliced video
//!   codec, modem baseband chain, crypto offload), auto-placed by the
//!   MultiFlex greedy mapper.
//! * [`mix_rig`] — the T11 rig: the video codec and an IPv4 fast path
//!   installed together on one shared fabric, with per-workload latency
//!   telemetry and a route-lookup deadline budget.
//! * [`fppa_tour_config`] — the F2 rig: a Figure 2 platform with one of
//!   every component class.
//!
//! The named rigs are collected in the [`ScenarioRegistry`], the
//! name → builder catalog the `expt` binary lists and tests enumerate.

use crate::config::{FppaConfig, HwIpConfig, MemoryBlockConfig};
use crate::platform::FppaPlatform;
use crate::report::PlatformReport;
use nw_apps::{
    crypto_pipeline, modem_pipeline, video_ipv4_mix, video_pipeline, CryptoParams, MixParams,
    ModemParams, PipelineLayout, ServiceKind, VideoParams,
};
use nw_dsoc::Application;
use nw_fabric::FabricSpec;
use nw_hwip::IoChannelConfig;
use nw_ipv4::app::{fast_path_app, FastPathLayout, FastPathWeights};
use nw_mapping::{GreedyLoadMapper, Mapper, MappingProblem, PeSlot};
use nw_mem::MemoryTechnology;
use nw_noc::TopologyKind;
use nw_pe::{Op, PeClass, PeConfig, Program, SchedPolicy};
use nw_types::{AreaMm2, NodeId, ObjectId, Picojoules};

/// Result of one latency-hiding measurement point (experiment F6).
#[derive(Debug, Clone, Copy)]
pub struct LatencyHidingPoint {
    /// Hardware threads per PE.
    pub threads: usize,
    /// One-way link latency in cycles (round trip is roughly double plus
    /// serialization and router delays).
    pub link_latency: u64,
    /// Measured core utilization.
    pub utilization: f64,
    /// Tasks completed in the measurement window.
    pub tasks: u64,
}

/// Runs the F6 latency-hiding rig: one PE with `threads` contexts executes
/// tasks of `compute_cycles` work plus one synchronous call to a hardwired
/// service across a `link_latency`-cycle link; the PE is kept saturated.
///
/// With enough threads to cover the round trip
/// (`threads ≳ 1 + round_trip / compute`), utilization approaches 1.0 —
/// claim C6.
///
/// # Panics
///
/// Panics on internal platform construction failure (fixed valid config).
pub fn latency_hiding(
    threads: usize,
    link_latency: u64,
    compute_cycles: u64,
    policy: SchedPolicy,
    swap_penalty: u64,
    cycles: u64,
) -> LatencyHidingPoint {
    let mut cfg = FppaConfig::new("latency-hiding", TopologyKind::Ring);
    cfg.link_latency = Some(link_latency);
    cfg.add_pe(
        PeConfig::new(PeClass::GpRisc, threads)
            .with_policy(policy)
            .with_swap_penalty(swap_penalty),
    );
    cfg.add_hwip(HwIpConfig {
        name: "table-service".to_owned(),
        ii: 1,
        latency: 4,
        area: AreaMm2(0.1),
        energy_per_item: Picojoules(5.0),
    });
    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let service = platform.hwip_node(0);

    let task = Program::straight_line([
        Op::Compute(compute_cycles),
        Op::call(service, 8, 8),
        Op::Compute(compute_cycles.max(2) / 2),
    ]);

    // Warm up and measure with manual saturation (no DSOC app needed).
    let warmup = cycles / 5;
    for c in 0..cycles + warmup {
        while platform.pe(0).idle_threads() > 0 {
            platform
                .pe_mut(0)
                .spawn(task.clone())
                .expect("idle thread checked");
        }
        platform.step();
        if c == warmup {
            // Statistics are cumulative; capture deltas via a fresh window
            // would need resetting, so the short warmup is simply accepted
            // as measurement noise on long runs.
        }
    }
    // The active-set scheduler accounts dormant-PE cycles lazily; settle
    // before reading the utilization counters.
    platform.settle();
    let stats = platform.pe(0).stats();
    LatencyHidingPoint {
        threads,
        link_latency,
        utilization: stats.core_utilization,
        tasks: stats.tasks_completed,
    }
}

/// The assembled IPv4 rig.
#[derive(Debug)]
pub struct Ipv4Rig {
    /// The platform (run it to measure).
    pub platform: FppaPlatform,
    /// The DSOC application.
    pub app: Application,
    /// Object layout per replica.
    pub layouts: Vec<FastPathLayout>,
    /// Placement used (object → PE).
    pub placement: Vec<usize>,
}

/// Builds the T3 rig: `replicas` fast-path worker chains on `replicas + 1`
/// PEs (one per chain plus a dedicated lookup PE), fed at `gbps` worst-case
/// line rate through one I/O channel, with egress bound back to the same
/// channel.
///
/// `threads` is the hardware thread count per PE — the knob that hides the
/// NoC round trip to the shared lookup engine. `link_latency` stresses the
/// interconnect (claim C7 holds it above 100 cycles).
///
/// # Panics
///
/// Panics if `replicas == 0` (the app builder rejects it) or on internal
/// construction failure.
pub fn ipv4_rig(
    replicas: usize,
    threads: usize,
    topology: TopologyKind,
    link_latency: u64,
    gbps: f64,
) -> Ipv4Rig {
    let weights = FastPathWeights::default();
    let (app, layouts) = fast_path_app(replicas, &weights).expect("replicas >= 1");

    let mut cfg = FppaConfig::new("ipv4-fast-path", topology);
    cfg.link_latency = Some(link_latency);
    // One worker PE per replica chain + one packet-header ASIP for lookups.
    for _ in 0..replicas {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    // The lookup engine: a packet-header ASIP run as a barrel processor
    // (zero-overhead thread rotation — the paper's "hardware units that
    // schedule threads and swap them in one cycle").
    let lookup_pe = cfg.add_pe(
        PeConfig::new(
            PeClass::Asip {
                domain: nw_pe::KernelDomain::PacketHeader,
            },
            threads.max(4),
        )
        .with_policy(SchedPolicy::RoundRobin)
        .with_swap_penalty(0),
    );
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 16.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let mut placement = vec![0usize; app.objects().len()];
    for (r, l) in layouts.iter().enumerate() {
        placement[l.classifier.0] = r;
        placement[l.rewriter.0] = r;
        placement[l.egress.0] = r;
        placement[l.lookup.0] = lookup_pe;
    }
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for l in &layouts {
        platform
            .bind_io_entry(0, l.classifier)
            .expect("io 0 exists");
        platform.bind_egress(l.egress, 0, 40).expect("io 0 exists");
    }
    Ipv4Rig {
        platform,
        app,
        layouts,
        placement,
    }
}

/// The T6 variant of [`ipv4_rig`]: an explicit `placement` (object → PE
/// index over `n_pes` identical PEs plus a trailing lookup-class ASIP is
/// **not** assumed — all `n_pes` PEs are GP-RISC so mapping quality is the
/// only variable).
///
/// # Panics
///
/// Panics if the placement does not match the application or names a PE
/// outside `0..n_pes`.
pub fn ipv4_rig_with_placement(
    replicas: usize,
    n_pes: usize,
    threads: usize,
    topology: TopologyKind,
    link_latency: u64,
    gbps: f64,
    placement: &[usize],
) -> Ipv4Rig {
    let weights = FastPathWeights::default();
    let (app, layouts) = fast_path_app(replicas, &weights).expect("replicas >= 1");

    let mut cfg = FppaConfig::new("ipv4-fast-path", topology);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 16.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    platform
        .install_app(&app, placement)
        .expect("placement must match the application");
    for l in &layouts {
        platform
            .bind_io_entry(0, l.classifier)
            .expect("io 0 exists");
        platform.bind_egress(l.egress, 0, 40).expect("io 0 exists");
    }
    Ipv4Rig {
        platform,
        app,
        layouts,
        placement: placement.to_vec(),
    }
}

/// Measures an IPv4 rig for `cycles` cycles and reports.
pub fn run_ipv4(rig: &mut Ipv4Rig, cycles: u64) -> PlatformReport {
    rig.platform.run(cycles)
}

/// The F2 rig: a Figure 2 FPPA with one of every component class — eight
/// multithreaded PEs, an SRAM and an eDRAM macro, an eFPGA fabric, a
/// hardwired MPEG-style block, and two communication I/O channels.
pub fn fppa_tour_config() -> FppaConfig {
    let mut cfg = FppaConfig::new("fppa-tour", TopologyKind::Mesh);
    for i in 0..8 {
        let class = match i % 4 {
            0 | 1 => PeClass::GpRisc,
            2 => PeClass::Dsp,
            _ => PeClass::Configurable {
                tuned_for: nw_pe::KernelDomain::PacketHeader,
            },
        };
        cfg.add_pe(PeConfig::new(class, 4));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 4.0));
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Edram, 32.0));
    cfg.add_fabric(FabricSpec::default());
    cfg.add_hwip(HwIpConfig {
        name: "mpeg4-codec".to_owned(),
        ii: 2,
        latency: 24,
        area: AreaMm2(1.2),
        energy_per_item: Picojoules(120.0),
    });
    cfg.add_io(IoChannelConfig::ten_gbe_worst_case());
    cfg.add_io(IoChannelConfig {
        rate: nw_types::BitsPerSec::from_gbps(2.5),
        ..IoChannelConfig::ten_gbe_worst_case()
    });
    cfg
}

/// A named, runnable scenario: an assembled platform with its installed
/// application, placement and stage directory — the uniform shape every
/// [`ScenarioRegistry`] builder produces.
#[derive(Debug)]
pub struct ScenarioRig {
    /// The platform (run it to measure).
    pub platform: FppaPlatform,
    /// The installed DSOC application.
    pub app: Application,
    /// Placement used (object → PE index).
    pub placement: Vec<usize>,
}

impl ScenarioRig {
    /// Runs the rig for `cycles` cycles and reports.
    pub fn run(&mut self, cycles: u64) -> PlatformReport {
        self.platform.run(cycles)
    }

    /// `(object name, id)` pairs in object order — the stage directory for
    /// per-stage reporting.
    pub fn stages(&self) -> Vec<(String, ObjectId)> {
        self.app
            .objects()
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.clone(), ObjectId(i)))
            .collect()
    }

    /// Looks up an object id by its name.
    pub fn stage_named(&self, name: &str) -> Option<ObjectId> {
        self.app
            .objects()
            .iter()
            .position(|o| o.name == name)
            .map(ObjectId)
    }
}

/// Places `app` on the first `n_pes` endpoints of `platform` with the
/// MultiFlex greedy load mapper (entry rates in items per cycle).
fn auto_place(
    platform: &FppaPlatform,
    app: &Application,
    n_pes: usize,
    entry_rates: &[f64],
) -> Vec<usize> {
    let problem = MappingProblem::new(
        app.clone(),
        entry_rates.to_vec(),
        (0..n_pes).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
        platform.hop_matrix(),
    )
    .expect("rig-constructed problems are valid");
    GreedyLoadMapper.map(&problem).placement
}

/// Binds every [`ServiceKind::Memory`] demand of `layout` to memory 0 and
/// partitions [`ServiceKind::HwIp`] demands across the platform's hwip
/// blocks in declaration order (fabric demands go to fabric 0).
fn bind_layout_services(platform: &mut FppaPlatform, layout: &PipelineLayout) {
    let mut next_hwip = 0usize;
    let n_hwips = platform.config().hwip.len();
    for &(stage, demand) in &layout.services {
        let node = match demand.kind {
            ServiceKind::Memory => platform.memory_node(0),
            ServiceKind::Fabric => platform.fabric_node(0),
            ServiceKind::HwIp => {
                let node = platform.hwip_node(next_hwip % n_hwips.max(1));
                next_hwip += 1;
                node
            }
        };
        platform
            .bind_service(
                layout.objects[stage],
                node,
                demand.request_bytes,
                demand.reply_bytes,
                demand.calls_per_item,
            )
            .expect("layout objects are installed and nodes are services");
    }
}

/// Builds the T8 rig: the frame-sliced video codec pipeline on `n_pes`
/// multithreaded PEs, its reference-frame store on a shared SRAM macro,
/// fed slices at `gbps` through one I/O channel with the packed bitstream
/// bound back to the same channel. Placement is computed by the greedy
/// MultiFlex mapper from the line rate.
///
/// # Panics
///
/// Panics on internal construction failure (fixed valid configs) or
/// `params.lanes == 0`.
pub fn video_rig(
    params: &VideoParams,
    n_pes: usize,
    threads: usize,
    link_latency: u64,
    gbps: f64,
) -> ScenarioRig {
    let workload = video_pipeline(params);
    let (app, layout) = workload
        .spec
        .to_application()
        .expect("video pipeline lowers to a valid application");

    let mut cfg = FppaConfig::new("video-codec", TopologyKind::Mesh);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::Dsp, threads));
    }
    // The shared reference-frame store the motion estimators hammer.
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Edram, 64.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.packet_bytes = nw_types::Bytes(params.slice_bytes);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);
    let slices_per_cycle = io.packets_per_cycle();

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let per_entry = slices_per_cycle / params.lanes as f64;
    let placement = auto_place(&platform, &app, n_pes, &vec![per_entry; params.lanes]);
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for lane in &workload.lanes {
        platform
            .bind_io_entry(0, layout.objects[lane.ingest])
            .expect("io 0 exists");
        platform
            .bind_egress(layout.objects[lane.pack], 0, params.slice_bytes / 2)
            .expect("io 0 exists");
    }
    bind_layout_services(&mut platform, &layout);
    ScenarioRig {
        platform,
        app,
        placement,
    }
}

/// Builds the T9 rig: the modem baseband chain on `n_pes` multithreaded
/// PEs, symbol bursts arriving at `mbps` through one I/O channel and
/// decoded MAC payloads bound back to it. Twoway channel-estimate and
/// link-adaptation round trips ride the NoC at `link_latency` cycles per
/// hop — the latency the threads must hide.
///
/// # Panics
///
/// Panics on internal construction failure or `params.carriers == 0`.
pub fn modem_rig(
    params: &ModemParams,
    n_pes: usize,
    threads: usize,
    link_latency: u64,
    mbps: f64,
) -> ScenarioRig {
    let workload = modem_pipeline(params);
    let (app, layout) = workload
        .spec
        .to_application()
        .expect("modem pipeline lowers to a valid application");

    let mut cfg = FppaConfig::new("modem-baseband", TopologyKind::Mesh);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::Dsp, threads));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 8.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(mbps / 1000.0);
    io.packet_bytes = nw_types::Bytes(params.burst_bytes);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);
    let bursts_per_cycle = io.packets_per_cycle();

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let per_entry = bursts_per_cycle / params.carriers as f64;
    let placement = auto_place(&platform, &app, n_pes, &vec![per_entry; params.carriers]);
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for chain in &workload.chains {
        platform
            .bind_io_entry(0, layout.objects[chain.frontend])
            .expect("io 0 exists");
        platform
            .bind_egress(layout.objects[chain.mac_out], 0, params.burst_bytes / 2)
            .expect("io 0 exists");
    }
    // The air-interface deadline budget on the shared channel estimator:
    // every demodulator query must return within a fixed multiple of the
    // unloaded NoC round trip (per-hop wire time scales with the link
    // latency; the constant covers serialization, the estimator's compute
    // and a bounded queueing allowance). Round trips beyond the budget
    // count as deadline misses in `PlatformReport::latency` — the "does
    // the modem meet its deadline" observable of experiments T9/T11.
    platform
        .set_latency_deadline(
            layout.objects[workload.channel_est],
            modem_est_deadline(link_latency),
        )
        .expect("estimator object is installed");
    ScenarioRig {
        platform,
        app,
        placement,
    }
}

/// The channel-estimate deadline budget of [`modem_rig`] for a given
/// per-hop link latency (see the comment at its use site). The unloaded
/// round trip on this rig measures ≈ 80 + 2·link cycles (two NoC
/// traversals plus the estimator's 90-cycle handler at DSP speedup), so
/// the budget allows roughly 1.5× that: met comfortably at nominal load,
/// blown when dispatcher queueing stretches the reply path.
pub fn modem_est_deadline(link_latency: u64) -> u64 {
    130 + 2 * link_latency
}

/// Builds the T10 rig: the crypto offload pipeline on `n_pes` PEs with a
/// hardwired AES engine and hash engine behind the NoC. Bulk payloads
/// arrive at `gbps`; every cipher/auth stage streams its blocks through
/// the shared engines (one synchronous call per block) before the
/// authenticated payload leaves through the same channel.
///
/// # Panics
///
/// Panics on internal construction failure or `params.channels == 0`.
pub fn crypto_rig(
    params: &CryptoParams,
    n_pes: usize,
    threads: usize,
    link_latency: u64,
    gbps: f64,
) -> ScenarioRig {
    let workload = crypto_pipeline(params);
    let (app, layout) = workload
        .spec
        .to_application()
        .expect("crypto pipeline lowers to a valid application");

    let mut cfg = FppaConfig::new("crypto-offload", TopologyKind::Mesh);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 4.0));
    cfg.add_hwip(HwIpConfig {
        name: "aes-engine".to_owned(),
        ii: 2,
        latency: 16,
        area: AreaMm2(0.6),
        energy_per_item: Picojoules(55.0),
    });
    cfg.add_hwip(HwIpConfig {
        name: "hash-engine".to_owned(),
        ii: 2,
        latency: 12,
        area: AreaMm2(0.4),
        energy_per_item: Picojoules(35.0),
    });
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.packet_bytes = nw_types::Bytes(params.payload_bytes);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);
    let payloads_per_cycle = io.packets_per_cycle();

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let per_entry = payloads_per_cycle / params.channels as f64;
    let placement = auto_place(&platform, &app, n_pes, &vec![per_entry; params.channels]);
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for ch in &workload.channels {
        platform
            .bind_io_entry(0, layout.objects[ch.ingest])
            .expect("io 0 exists");
        platform
            .bind_egress(layout.objects[ch.egress], 0, params.payload_bytes)
            .expect("io 0 exists");
    }
    // Cipher blocks stream through the AES engine, digests through the
    // hash engine — the round-robin hwip partition in declaration order
    // (cipher stages were declared before auth stages per channel).
    bind_layout_services(&mut platform, &layout);
    ScenarioRig {
        platform,
        app,
        placement,
    }
}

/// Builds the T11 rig: the video + IPv4 *mix* — both workloads installed
/// as one application on a shared pool of `n_pes` multithreaded PEs, placed
/// together by the greedy MultiFlex mapper so they compete for the same
/// fabric. Video slices arrive at `video_gbps` on I/O channel 0 (packed
/// bitstream bound back to it); minimum-size IPv4 packets arrive at
/// `ipv4_gbps` on channel 1 (rewritten packets bound back to it). The
/// motion estimators share the frame-store macro; the packet chains share
/// the twoway route-lookup object, which carries a deadline budget
/// ([`mix_lookup_deadline`]) so interference from the video half shows up
/// as measured deadline misses, not just throughput loss.
///
/// # Panics
///
/// Panics on internal construction failure (fixed valid configs),
/// `params.video.lanes == 0` or `params.ipv4_workers == 0`.
pub fn mix_rig(
    params: &MixParams,
    n_pes: usize,
    threads: usize,
    link_latency: u64,
    video_gbps: f64,
    ipv4_gbps: f64,
) -> ScenarioRig {
    mix_rig_detailed(params, n_pes, threads, link_latency, video_gbps, ipv4_gbps).rig
}

/// A mix rig together with its workload directory: the stage graph the
/// platform was built from and the stage → object mapping, so callers
/// (experiment T11) can aggregate per-workload latency without rebuilding
/// the workload or assuming stage indices equal object ids.
#[derive(Debug)]
pub struct MixRig {
    /// The assembled rig (registry-compatible).
    pub rig: ScenarioRig,
    /// The combined workload with its per-workload stage directories.
    pub workload: nw_apps::MixWorkload,
    /// `objects[stage index]` → installed [`ObjectId`] (the lowering's
    /// [`PipelineLayout::objects`]).
    pub objects: Vec<ObjectId>,
}

/// [`mix_rig`] returning the full [`MixRig`] directory.
///
/// # Panics
///
/// See [`mix_rig`].
pub fn mix_rig_detailed(
    params: &MixParams,
    n_pes: usize,
    threads: usize,
    link_latency: u64,
    video_gbps: f64,
    ipv4_gbps: f64,
) -> MixRig {
    let workload = video_ipv4_mix(params);
    let (app, layout) = workload
        .spec
        .to_application()
        .expect("mix lowers to a valid application");

    let mut cfg = FppaConfig::new("mix-video-ipv4", TopologyKind::Mesh);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    // The video half's shared reference-frame store.
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Edram, 64.0));
    // Channel 0: video slices. Channel 1: worst-case minimum-size packets.
    let mut video_io = IoChannelConfig::ten_gbe_worst_case();
    video_io.rate = nw_types::BitsPerSec::from_gbps(video_gbps);
    video_io.packet_bytes = nw_types::Bytes(params.video.slice_bytes);
    video_io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(video_io);
    let mut ip_io = IoChannelConfig::ten_gbe_worst_case();
    ip_io.rate = nw_types::BitsPerSec::from_gbps(ipv4_gbps);
    ip_io.packet_bytes = nw_types::Bytes(params.packet_bytes);
    ip_io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(ip_io);
    let slices_per_cycle = video_io.packets_per_cycle();
    let packets_per_cycle = ip_io.packets_per_cycle();

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    // Entry rates in `spec.entries` order: the absorbed video lanes first,
    // then one classifier per packet chain.
    let mut entry_rates = vec![slices_per_cycle / params.video.lanes as f64; params.video.lanes];
    entry_rates.extend(vec![
        packets_per_cycle / params.ipv4_workers as f64;
        params.ipv4_workers
    ]);
    let placement = auto_place(&platform, &app, n_pes, &entry_rates);
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for lane in &workload.video_lanes {
        platform
            .bind_io_entry(0, layout.objects[lane.ingest])
            .expect("io 0 exists");
        platform
            .bind_egress(layout.objects[lane.pack], 0, params.video.slice_bytes / 2)
            .expect("io 0 exists");
    }
    for chain in &workload.ipv4_chains {
        platform
            .bind_io_entry(1, layout.objects[chain.classify])
            .expect("io 1 exists");
        platform
            .bind_egress(layout.objects[chain.emit], 1, params.packet_bytes)
            .expect("io 1 exists");
    }
    bind_layout_services(&mut platform, &layout);
    platform
        .set_latency_deadline(
            layout.objects[workload.route_lookup],
            mix_lookup_deadline(link_latency),
        )
        .expect("lookup object is installed");
    MixRig {
        rig: ScenarioRig {
            platform,
            app,
            placement,
        },
        workload,
        objects: layout.objects,
    }
}

/// The standard PE-pool size for a mix rig: two PEs per video lane (the
/// five-stage lane plus its share of rate control), one per packet chain,
/// and one spare — the sizing every mix consumer (the scenario registry,
/// experiment T11, the bench row) shares so they simulate the same
/// platform shape.
pub fn mix_pe_pool(params: &MixParams) -> usize {
    2 * params.video.lanes + params.ipv4_workers + 1
}

/// The demo-sized [`MixParams`] shared by the scenario registry, the T11
/// experiment and the bench row: 4 video lanes × 4 packet chains at full
/// size, halved under `fast`.
pub fn mix_demo_params(fast: bool) -> MixParams {
    MixParams {
        video: VideoParams {
            lanes: if fast { 2 } else { 4 },
            ..VideoParams::default()
        },
        ipv4_workers: if fast { 2 } else { 4 },
        ..MixParams::default()
    }
}

/// The route-lookup deadline budget of [`mix_rig`]: the classifier's
/// per-packet lookup round trip must fit roughly 3× the unloaded round
/// trip (≈ 107 cycles at 4-cycle links, scaling with the per-hop link
/// latency) — the packet workload's line-rate processing window,
/// independent of offered load. Queueing inflicted by a saturated video
/// half pushes the lookup tail past this budget.
pub fn mix_lookup_deadline(link_latency: u64) -> u64 {
    240 + 16 * link_latency
}

/// One registry entry: a named rig with a one-line summary and a builder.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Registry key (`expt list` prints it).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Builds the rig; `fast` shrinks the instance for CI-speed runs.
    pub build: fn(fast: bool) -> ScenarioRig,
}

/// The name → rig-builder catalog of the paper's scenarios.
///
/// [`ScenarioRegistry::standard`] registers the four application rigs
/// (IPv4 fast path, video codec, modem baseband, crypto offload) plus the
/// `mix` interference rig (video + IPv4 on one fabric); external callers
/// can [`register`](ScenarioRegistry::register) more.
///
/// # Examples
///
/// ```
/// use nanowall::scenarios::ScenarioRegistry;
///
/// let reg = ScenarioRegistry::standard();
/// assert!(reg.names().contains(&"video"));
/// let mut rig = reg.build("crypto", true).expect("registered");
/// let report = rig.run(5_000);
/// assert!(report.tasks_completed > 0);
/// ```
#[derive(Debug, Default)]
pub struct ScenarioRegistry {
    specs: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard catalog: `ipv4`, `video`, `modem`, `crypto`.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(ScenarioSpec {
            name: "ipv4",
            summary: "IPv4 fast path at line rate on worker chains + shared lookup ASIP (§7.2)",
            build: |fast| {
                let replicas = if fast { 4 } else { 8 };
                let rig = ipv4_rig(replicas, 8, TopologyKind::Mesh, 4, replicas as f64 * 0.6);
                ScenarioRig {
                    platform: rig.platform,
                    app: rig.app,
                    placement: rig.placement,
                }
            },
        });
        reg.register(ScenarioSpec {
            name: "video",
            summary: "frame-sliced video codec: memory-bound motion search + entropy coding (§7.1)",
            build: |fast| {
                let params = VideoParams {
                    lanes: if fast { 2 } else { 4 },
                    ..VideoParams::default()
                };
                let gbps = if fast { 3.0 } else { 6.0 };
                video_rig(&params, 2 * params.lanes + 1, 4, 4, gbps)
            },
        });
        reg.register(ScenarioSpec {
            name: "modem",
            summary: "modem baseband chain: twoway-heavy channel-estimate/link-adapt round trips",
            build: |fast| {
                let params = ModemParams::default();
                let mbps = if fast { 400.0 } else { 800.0 };
                modem_rig(&params, 6, 4, 4, mbps)
            },
        });
        reg.register(ScenarioSpec {
            name: "crypto",
            summary: "crypto offload: bulk payloads streamed through shared AES/hash engines",
            build: |fast| {
                let params = CryptoParams::default();
                let gbps = if fast { 2.0 } else { 4.0 };
                crypto_rig(&params, 4, 8, 4, gbps)
            },
        });
        reg.register(ScenarioSpec {
            name: "mix",
            summary: "interference mix: video codec + IPv4 fast path sharing one fabric (T11)",
            build: |fast| {
                let params = mix_demo_params(fast);
                let (video_gbps, ipv4_gbps) = if fast { (2.0, 1.0) } else { (4.0, 2.0) };
                mix_rig(&params, mix_pe_pool(&params), 4, 4, video_gbps, ipv4_gbps)
            },
        });
        reg
    }

    /// Adds a spec (later registrations shadow earlier names in
    /// [`get`](ScenarioRegistry::get)).
    pub fn register(&mut self, spec: ScenarioSpec) {
        self.specs.push(spec);
    }

    /// All specs in registration order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Registered names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Looks up a spec by name (latest registration wins).
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().rev().find(|s| s.name == name)
    }

    /// Builds the named rig, or `None` for an unknown name.
    pub fn build(&self, name: &str, fast: bool) -> Option<ScenarioRig> {
        self.get(name).map(|s| (s.build)(fast))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hiding_threads_recover_utilization() {
        let one = latency_hiding(1, 50, 40, SchedPolicy::SwitchOnStall, 1, 20_000);
        let eight = latency_hiding(8, 50, 40, SchedPolicy::SwitchOnStall, 1, 20_000);
        assert!(
            one.utilization < 0.6,
            "single thread should stall hard: {}",
            one.utilization
        );
        assert!(
            eight.utilization > 0.85,
            "8 threads should hide a 50-cycle link: {}",
            eight.utilization
        );
        assert!(eight.tasks > one.tasks * 2);
    }

    #[test]
    fn ipv4_rig_shapes() {
        let rig = ipv4_rig(2, 4, TopologyKind::Mesh, 2, 10.0);
        assert_eq!(rig.layouts.len(), 2);
        assert_eq!(rig.placement.len(), rig.app.objects().len());
        // Lookup object shares one PE; replicas use distinct worker PEs.
        assert_ne!(
            rig.placement[rig.layouts[0].classifier.0],
            rig.placement[rig.layouts[1].classifier.0]
        );
    }

    #[test]
    fn ipv4_rig_forwards_packets_at_sustainable_rate() {
        // 4 workers sustain ~2.5 Gb/s (the 10 Gb/s point of claim C7 needs
        // ~3x more workers and is exercised by the T3 experiment sweep).
        let mut rig = ipv4_rig(4, 8, TopologyKind::Mesh, 2, 2.5);
        let report = run_ipv4(&mut rig, 40_000);
        assert!(report.io[0].generated > 500, "line should generate packets");
        assert!(
            report.io[0].transmitted as f64 > report.io[0].generated as f64 * 0.8,
            "a sustainable rate should forward most packets: {:?}",
            report.io[0]
        );
        assert!(report.tasks_completed > 0);
    }

    #[test]
    fn ipv4_rig_oversubscribed_saturates_workers() {
        // At 10 Gb/s with only 4 workers, the workers pin near 100%
        // utilization and the dispatcher backlog grows — the failure mode
        // multithreading alone cannot fix (you need more PEs).
        let mut rig = ipv4_rig(4, 8, TopologyKind::Mesh, 2, 10.0);
        let report = run_ipv4(&mut rig, 20_000);
        let worker_util: f64 = report.pe_utilization[..4].iter().sum::<f64>() / 4.0;
        assert!(worker_util > 0.9, "workers should saturate: {worker_util}");
        assert!(report.queued_invocations > 100, "backlog should grow");
    }

    #[test]
    fn video_rig_delivers_slices_and_hits_the_frame_store() {
        let params = VideoParams {
            lanes: 2,
            ..VideoParams::default()
        };
        let mut rig = video_rig(&params, 5, 4, 2, 3.0);
        let report = rig.run(40_000);
        assert!(report.io[0].generated > 20, "{:?}", report.io[0]);
        assert!(
            report.io[0].transmitted as f64 > report.io[0].generated as f64 * 0.7,
            "sustainable rate should deliver most slices: {:?}",
            report.io[0]
        );
        // Memory-bound: the reference fetches land on the frame store.
        assert!(
            report.mem_accesses >= report.io[0].transmitted * params.ref_fetches as u64,
            "mem {} vs slices {}",
            report.mem_accesses,
            report.io[0].transmitted
        );
        assert!(report.energy.0 > 0.0);
        // Per-stage accounting reaches the pipeline tail.
        let pack = rig.stage_named("pack-0").unwrap();
        assert!(report.object_invocations[pack.0] > 0);
    }

    #[test]
    fn modem_rig_is_twoway_heavy_and_holds_the_air_rate() {
        let mut rig = modem_rig(&ModemParams::default(), 6, 4, 2, 400.0);
        let report = rig.run(40_000);
        assert!(report.io[0].generated > 10, "{:?}", report.io[0]);
        assert!(
            report.io[0].transmitted as f64 > report.io[0].generated as f64 * 0.7,
            "{:?}",
            report.io[0]
        );
        // The shared estimator answers every carrier's queries: its rate is
        // chan_queries × the per-chain burst rate.
        let est = rig.stage_named("channel-est").unwrap();
        let fe = rig.stage_named("rf-frontend-0").unwrap();
        assert!(
            report.object_invocations[est.0] >= report.object_invocations[fe.0],
            "estimator {} vs frontend {}",
            report.object_invocations[est.0],
            report.object_invocations[fe.0]
        );
    }

    #[test]
    fn crypto_rig_streams_blocks_through_the_engines() {
        let params = CryptoParams::default();
        let mut rig = crypto_rig(&params, 4, 8, 2, 2.0);
        let report = rig.run(40_000);
        assert!(report.io[0].generated > 10, "{:?}", report.io[0]);
        assert!(
            report.io[0].transmitted as f64 > report.io[0].generated as f64 * 0.7,
            "{:?}",
            report.io[0]
        );
        // Hwip-bound: each payload makes 2 × blocks_per_payload engine
        // calls (cipher pass + auth pass).
        assert!(
            report.hwip_served >= report.io[0].transmitted * params.blocks_per_payload() as u64,
            "hwip {} vs payloads {}",
            report.hwip_served,
            report.io[0].transmitted
        );
        assert!(report.energy_per_transmitted(0).unwrap().0 > 0.0);
    }

    #[test]
    fn registry_builds_every_standard_rig() {
        let reg = ScenarioRegistry::standard();
        assert_eq!(reg.names(), vec!["ipv4", "video", "modem", "crypto", "mix"]);
        for spec in reg.specs() {
            let mut rig = (spec.build)(true);
            assert_eq!(
                rig.placement.len(),
                rig.app.objects().len(),
                "{}",
                spec.name
            );
            let report = rig.run(8_000);
            assert!(report.tasks_completed > 0, "{} must do work", spec.name);
            assert!(report.energy.0 > 0.0, "{} must burn energy", spec.name);
        }
        assert!(reg.build("nope", true).is_none());
    }

    #[test]
    fn latency_telemetry_records_service_and_twoway_round_trips() {
        // Service offloads: the crypto cipher stages call the AES engine;
        // their histograms must fill and stay ordered.
        let mut rig = crypto_rig(&CryptoParams::default(), 4, 8, 2, 2.0);
        let report = rig.run(40_000);
        let cipher = rig.stage_named("cipher-0").unwrap();
        let lat = report.object_latency(cipher.0).expect("app installed");
        assert!(lat.count > 0, "cipher offloads must record: {lat:?}");
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99, "{lat:?}");
        assert!(lat.p99 <= lat.max, "{lat:?}");
        assert!(lat.mean > 0.0, "{lat:?}");
        assert!(lat.deadline.is_none(), "crypto sets no budget");

        // Twoway invocations: the modem's channel estimator answers the
        // demodulators; its round trips carry the rig's deadline budget.
        let mut rig = modem_rig(&ModemParams::default(), 6, 4, 2, 400.0);
        let est = rig.stage_named("channel-est").unwrap();
        let report = rig.run(40_000);
        let lat = report.object_latency(est.0).expect("app installed");
        assert!(lat.count > 0, "estimate queries must record: {lat:?}");
        assert_eq!(lat.deadline, Some(modem_est_deadline(2)), "{lat:?}");
        assert!(lat.miss_rate() < 0.05, "nominal load meets the budget");
        // The full histogram is reachable for cross-object aggregation.
        let hist = rig.platform.object_latency(est).expect("tracked");
        assert_eq!(hist.count(), lat.count);
    }

    #[test]
    fn set_latency_deadline_validates_its_object() {
        let mut rig = crypto_rig(&CryptoParams::default(), 4, 8, 2, 2.0);
        let n = rig.app.objects().len();
        let err = rig
            .platform
            .set_latency_deadline(ObjectId(n + 5), 100)
            .unwrap_err();
        assert_eq!(
            err,
            crate::runtime::InstallError::UnknownObject(ObjectId(n + 5))
        );
        assert!(rig.platform.set_latency_deadline(ObjectId(0), 100).is_ok());
    }

    #[test]
    fn mix_rig_places_both_workloads_and_tracks_their_latency() {
        let params = MixParams {
            video: VideoParams {
                lanes: 2,
                ..VideoParams::default()
            },
            ipv4_workers: 2,
            ..MixParams::default()
        };
        let mut rig = mix_rig(&params, mix_pe_pool(&params), 4, 4, 2.0, 1.0);
        let report = rig.run(40_000);
        // Both lines deliver through their own channels.
        assert!(
            report.io[0].transmitted > 0,
            "video egress: {:?}",
            report.io
        );
        assert!(report.io[1].transmitted > 0, "ipv4 egress: {:?}", report.io);
        // Per-workload latency: the shared route lookup and a video
        // motion estimator both record round trips.
        let lookup = rig.stage_named("route-lookup").unwrap();
        let me = rig.stage_named("motion-est-0").unwrap();
        assert!(report.object_latency(lookup.0).unwrap().count > 0);
        assert!(report.object_latency(me.0).unwrap().count > 0);
        assert_eq!(
            report.object_latency(lookup.0).unwrap().deadline,
            Some(mix_lookup_deadline(4))
        );
    }

    #[test]
    fn bind_service_rejects_non_service_nodes() {
        let mut rig = crypto_rig(&CryptoParams::default(), 4, 8, 2, 2.0);
        let pe_node = rig.platform.pe_node(0);
        let err = rig
            .platform
            .bind_service(ObjectId(0), pe_node, 8, 8, 1)
            .unwrap_err();
        assert_eq!(err, crate::runtime::InstallError::NotAServiceNode(pe_node));
    }

    #[test]
    fn fppa_tour_has_every_component_class() {
        let cfg = fppa_tour_config();
        assert_eq!(cfg.pes.len(), 8);
        assert_eq!(cfg.memories.len(), 2);
        assert_eq!(cfg.fabrics.len(), 1);
        assert_eq!(cfg.hwip.len(), 1);
        assert_eq!(cfg.io.len(), 2);
        assert!(FppaPlatform::new(cfg).is_ok());
    }
}
