//! The DSOC runtime: application installation, program synthesis and
//! invocation dispatch.
//!
//! This is the platform-dependent half of the paper's §7.2 stack. Given a
//! validated [`Application`] and a placement (object → PE), the runtime:
//!
//! 1. registers every object with the [`Broker`];
//! 2. on each arriving invocation, *synthesizes* a micro-op handler program
//!    from the method descriptor — state read, compute burst, downstream
//!    sends/calls (marshalled with the real wire codec), reply if twoway,
//!    and the egress hand-off if the object is bound to an I/O channel;
//! 3. dispatches handlers onto idle hardware threads (the hardware
//!    dispatcher of the StepNP platform), queueing when all contexts are
//!    busy;
//! 4. paces entry-point traffic: a deterministic rate drive, line-rate I/O
//!    binding, or saturation mode for utilization experiments.

use crate::tags::RequestTag;
use nw_dsoc::{Application, Broker, Domain, Message, MessageKind, MessageView, MethodId};
use nw_noc::{Packet, PayloadPool};
use nw_obs::{TraceEvent, TraceSink};
use nw_pe::{KernelDomain, Op, Pe, Program};
use nw_types::{Cycles, NodeId, ObjectId};
use std::collections::{BTreeMap, VecDeque};

// nw-analyze: allow-file(RH01): every acquired buffer's ownership transfers out of this
// module — into synthesized Program sends and outbox messages that become NoC packets;
// the platform recycles each one at packet consumption (FppaPlatform::route_arrivals).
use std::fmt;
use std::sync::Arc;

/// Errors from installing an application or configuring drives.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// Placement length differs from the object count.
    PlacementLength {
        /// Objects in the application.
        objects: usize,
        /// Entries in the placement.
        placed: usize,
    },
    /// Placement names a PE that does not exist.
    PeOutOfRange(usize),
    /// The driven/bound object is not an entry point of the application.
    NotAnEntry(ObjectId),
    /// No application is installed.
    NoApp,
    /// The I/O channel index does not exist.
    IoOutOfRange(usize),
    /// The object does not exist in the application.
    UnknownObject(ObjectId),
    /// The bound node is not a service endpoint (memory, fabric or hwip).
    NotAServiceNode(NodeId),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::PlacementLength { objects, placed } => {
                write!(f, "placement covers {placed} of {objects} objects")
            }
            InstallError::PeOutOfRange(p) => write!(f, "placement names missing PE {p}"),
            InstallError::NotAnEntry(o) => write!(f, "object {o} is not an entry point"),
            InstallError::NoApp => write!(f, "no application installed"),
            InstallError::IoOutOfRange(i) => write!(f, "no I/O channel {i}"),
            InstallError::UnknownObject(o) => write!(f, "object {o} not in application"),
            InstallError::NotAServiceNode(n) => {
                write!(f, "node {n} is not a memory/fabric/hwip service endpoint")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// How an I/O channel feeds an entry point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IoBinding {
    pub object: ObjectId,
    pub method: MethodId,
}

/// A per-invocation synchronous offload against a platform service node
/// (memory macro, eFPGA fabric or hardwired IP) installed on an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceBinding {
    /// The service endpoint the handler calls.
    pub node: NodeId,
    /// Request payload per call.
    pub request_bytes: u64,
    /// Expected reply payload per call.
    pub reply_bytes: u64,
    /// Synchronous calls per invocation.
    pub calls: u32,
}

/// A queued invocation awaiting an idle hardware thread.
#[derive(Debug, Clone)]
struct PendingInvocation {
    object: ObjectId,
    method: MethodId,
    /// The invocation tag: the wire sequence number of the arriving request
    /// (0 for drive/saturation-originated invocations, which have no
    /// caller). Synthesized replies echo it, so a reply correlates with its
    /// request on the wire — the tag threads request → dispatch queue →
    /// handler → reply.
    seq: u32,
    /// Reply destination and request tag for twoway invocations.
    reply_to: Option<(NodeId, u64)>,
}

/// A deterministic entry-rate drive.
#[derive(Debug, Clone)]
struct Drive {
    object: ObjectId,
    method: MethodId,
    rate: f64,
    acc: f64,
}

/// One downstream call edge of a handler, resolved once: the callee's
/// marshalling footprint and hosting node never change after installation,
/// so synthesis only applies the per-invocation fractional-multiplicity
/// carry and fresh sequence numbers.
#[derive(Debug, Clone, PartialEq)]
struct EdgePlan {
    /// Index into the application's edge list (the carry accumulator slot).
    edge_idx: usize,
    calls_per_invocation: f64,
    to: ObjectId,
    to_method: MethodId,
    /// Node hosting the callee.
    dst: NodeId,
    /// Callee argument bytes (message body size).
    arg_bytes: u64,
    twoway: bool,
    /// Expected reply size for twoway calls (callee reply + wire header).
    call_reply_bytes: u64,
}

/// The memoized static skeleton of one `(object, method)` handler.
///
/// Synthesizing a handler used to re-walk every application edge and clone
/// the method descriptor per invocation; the plan hoists all of that out so
/// the per-invocation work is just op emission.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HandlerPlan {
    domain: Domain,
    local_bytes: u64,
    service: Option<ServiceBinding>,
    compute_cycles: u64,
    edges: Vec<EdgePlan>,
    /// This method's reply body size (twoway answers).
    reply_body_bytes: u64,
    egress: Option<(NodeId, u64)>,
}

/// The installed-application runtime state.
#[derive(Debug, Clone)]
pub struct Runtime {
    app: Application,
    /// object → PE index.
    placement: Vec<usize>,
    broker: Broker,
    /// Per-PE invocation queues.
    dispatch: Vec<VecDeque<PendingInvocation>>,
    drives: Vec<Drive>,
    io_bindings: Vec<Vec<IoBinding>>,
    io_rr: Vec<usize>,
    /// Objects whose host PE is kept saturated with entry invocations.
    saturate: Vec<(ObjectId, MethodId)>,
    /// Egress bindings: object → (I/O node, packet bytes).
    egress: BTreeMap<ObjectId, (NodeId, u64)>,
    /// Service bindings: object → per-invocation offload calls.
    services: BTreeMap<ObjectId, ServiceBinding>,
    /// Fractional call-multiplicity carry per edge index.
    edge_carry: Vec<f64>,
    /// Memoized handler skeletons per (object, method).
    plans: BTreeMap<(ObjectId, MethodId), Arc<HandlerPlan>>,
    /// Plan-cache hits (observability for the memoization tests).
    plan_hits: u64,
    /// Invocations queued across all per-PE dispatch queues (so the
    /// dispatcher can skip the whole scan when nothing is pending).
    pending_total: usize,
    seq: u32,
    /// Invocations that arrived but could not be decoded (protocol errors).
    pub decode_errors: u64,
    /// Total invocations dispatched to threads.
    pub dispatched: u64,
    /// Invocations dispatched per object (per-stage throughput input).
    dispatched_per_object: Vec<u64>,
    /// `thread_object[pe][tid]`: the object whose handler was last spawned
    /// on that hardware thread. Consulted by the platform's latency probe
    /// to attribute service-node offload calls to the issuing object; only
    /// read while the handler runs (a thread's in-flight call pins its
    /// program), so stale entries after retirement are harmless.
    thread_object: Vec<Vec<Option<ObjectId>>>,
}

impl Runtime {
    pub(crate) fn new(
        app: Application,
        placement: Vec<usize>,
        pe_nodes: &[NodeId],
        n_pes: usize,
        n_ios: usize,
    ) -> Result<Self, InstallError> {
        if placement.len() != app.objects().len() {
            return Err(InstallError::PlacementLength {
                objects: app.objects().len(),
                placed: placement.len(),
            });
        }
        if let Some(&bad) = placement.iter().find(|&&p| p >= n_pes) {
            return Err(InstallError::PeOutOfRange(bad));
        }
        let mut broker = Broker::new();
        for (obj, &pe) in placement.iter().enumerate() {
            broker.register(ObjectId(obj), pe_nodes[pe]);
        }
        let n_edges = app.edges().len();
        let n_objects = app.objects().len();
        Ok(Runtime {
            app,
            placement,
            broker,
            dispatch: (0..n_pes).map(|_| VecDeque::new()).collect(),
            drives: Vec::new(),
            io_bindings: vec![Vec::new(); n_ios],
            io_rr: vec![0; n_ios],
            saturate: Vec::new(),
            egress: BTreeMap::new(),
            services: BTreeMap::new(),
            edge_carry: vec![0.0; n_edges],
            plans: BTreeMap::new(),
            plan_hits: 0,
            pending_total: 0,
            seq: 0,
            decode_errors: 0,
            dispatched: 0,
            dispatched_per_object: vec![0; n_objects],
            thread_object: vec![Vec::new(); n_pes],
        })
    }

    /// The installed application.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The object placement (object index → PE index).
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The broker resolving objects to nodes.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    fn entry_method_of(&self, object: ObjectId) -> Result<MethodId, InstallError> {
        self.app
            .entries()
            .iter()
            .find(|&&(o, _)| o == object)
            .map(|&(_, m)| m)
            .ok_or(InstallError::NotAnEntry(object))
    }

    pub(crate) fn add_drive(&mut self, object: ObjectId, rate: f64) -> Result<(), InstallError> {
        let method = self.entry_method_of(object)?;
        self.drives.push(Drive {
            object,
            method,
            rate,
            acc: 0.0,
        });
        Ok(())
    }

    pub(crate) fn add_saturation(&mut self, object: ObjectId) -> Result<(), InstallError> {
        let method = self.entry_method_of(object)?;
        self.saturate.push((object, method));
        Ok(())
    }

    pub(crate) fn bind_io(&mut self, io: usize, object: ObjectId) -> Result<(), InstallError> {
        let method = self.entry_method_of(object)?;
        let slot = self
            .io_bindings
            .get_mut(io)
            .ok_or(InstallError::IoOutOfRange(io))?;
        slot.push(IoBinding { object, method });
        Ok(())
    }

    pub(crate) fn bind_egress(
        &mut self,
        object: ObjectId,
        io_node: NodeId,
        packet_bytes: u64,
    ) -> Result<(), InstallError> {
        if object.0 >= self.app.objects().len() {
            return Err(InstallError::UnknownObject(object));
        }
        self.egress.insert(object, (io_node, packet_bytes));
        // Bindings are baked into the memoized handler skeletons.
        self.plans.clear();
        Ok(())
    }

    pub(crate) fn bind_service(
        &mut self,
        object: ObjectId,
        binding: ServiceBinding,
    ) -> Result<(), InstallError> {
        if object.0 >= self.app.objects().len() {
            return Err(InstallError::UnknownObject(object));
        }
        self.services.insert(object, binding);
        // Bindings are baked into the memoized handler skeletons.
        self.plans.clear();
        Ok(())
    }

    /// The service binding of `object`, if any.
    pub fn service_of(&self, object: ObjectId) -> Option<&ServiceBinding> {
        self.services.get(&object)
    }

    /// Invocations dispatched per object (indexed by [`ObjectId`]).
    pub fn object_dispatches(&self) -> &[u64] {
        &self.dispatched_per_object
    }

    pub(crate) fn io_has_bindings(&self, io: usize) -> bool {
        self.io_bindings.get(io).is_some_and(|b| !b.is_empty())
    }

    /// Builds the (destination node, marshalled bytes) of one line-rate
    /// ingress invocation for a bound I/O channel, rotating round-robin
    /// among the channel's bound entry points. The marshalled buffer is
    /// drawn from the payload arena rather than allocated.
    ///
    /// # Panics
    ///
    /// Panics if the channel has no bindings (callers check
    /// [`Runtime::io_has_bindings`] first).
    pub(crate) fn ingress_invocation(
        &mut self,
        io: usize,
        pool: &mut PayloadPool,
    ) -> (NodeId, Vec<u8>) {
        let bindings = &self.io_bindings[io];
        assert!(!bindings.is_empty(), "ingress on an unbound I/O channel");
        let b = bindings[self.io_rr[io] % bindings.len()];
        self.io_rr[io] = (self.io_rr[io] + 1) % bindings.len();
        let arg_bytes = self.app.method(b.object, b.method).arg_bytes as usize;
        let seq = self.next_seq();
        let mut data = pool.take();
        Message::encode_zeroed_into(
            MessageKind::Invocation,
            b.object,
            b.method,
            seq,
            arg_bytes,
            &mut data,
        );
        let dst = self
            .broker
            .resolve(b.object)
            .expect("placed objects are registered");
        (dst, data)
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Routes an arriving DSOC packet at PE `p` into its dispatch queue.
    pub(crate) fn enqueue_invocation(&mut self, p: usize, pkt: &Packet) {
        // Borrowed decode: dispatch only needs the header fields, so the
        // body stays in the packet buffer (which the platform recycles).
        let msg = match MessageView::decode(&pkt.data) {
            Ok(m) => m,
            Err(_) => {
                self.decode_errors += 1;
                return;
            }
        };
        if msg.kind != MessageKind::Invocation {
            self.decode_errors += 1;
            return;
        }
        if msg.object.0 >= self.app.objects().len()
            || msg.method.0 as usize >= self.app.object(msg.object).methods.len()
        {
            self.decode_errors += 1;
            return;
        }
        let twoway = self.app.method(msg.object, msg.method).is_twoway();
        let reply_to = (twoway && pkt.tag != 0).then_some((pkt.src, pkt.tag));
        self.dispatch[p].push_back(PendingInvocation {
            object: msg.object,
            method: msg.method,
            seq: msg.seq,
            reply_to,
        });
        self.pending_total += 1;
    }

    /// Advances the deterministic entry drives.
    pub(crate) fn drive(&mut self, _now: Cycles) {
        for d in 0..self.drives.len() {
            self.drives[d].acc += self.drives[d].rate;
            while self.drives[d].acc >= 1.0 {
                self.drives[d].acc -= 1.0;
                let (object, method) = (self.drives[d].object, self.drives[d].method);
                let pe = self.placement[object.0];
                self.dispatch[pe].push_back(PendingInvocation {
                    object,
                    method,
                    seq: 0,
                    reply_to: None,
                });
                self.pending_total += 1;
            }
        }
    }

    /// Whether entry drives are installed (their per-cycle rate accumulators
    /// must advance every cycle, so the platform cannot fast-forward).
    pub(crate) fn has_pacing(&self) -> bool {
        !self.drives.is_empty()
    }

    /// Whether the dispatcher has anything to do this cycle: queued
    /// invocations, or saturation entries that refill every cycle.
    pub(crate) fn has_dispatch_work(&self) -> bool {
        self.pending_total > 0 || !self.saturate.is_empty()
    }

    /// Dispatches queued invocations (and saturation refills) onto idle
    /// hardware threads.
    ///
    /// Only PEs with pending work are visited (an active-set skip that is
    /// behaviour-identical to the dense scan, since a PE with an empty queue
    /// is a no-op there). Each PE spawned on is flagged in `woken` so the
    /// platform's active-set scheduler ticks it this cycle, and its lazy
    /// busy/idle accounting is settled before the spawn flips a thread
    /// from idle to ready.
    pub(crate) fn dispatch(
        &mut self,
        pes: &mut [Pe],
        now: Cycles,
        woken: &mut [bool],
        pool: &mut PayloadPool,
        mut sink: Option<&mut (dyn TraceSink + '_)>,
    ) {
        if self.pending_total > 0 {
            for (p, pe) in pes.iter_mut().enumerate() {
                if self.dispatch[p].is_empty() || pe.idle_threads() == 0 {
                    continue;
                }
                pe.settle_accounting(now);
                while pe.idle_threads() > 0 {
                    let Some(inv) = self.dispatch[p].pop_front() else {
                        break;
                    };
                    self.pending_total -= 1;
                    let prog = self.synthesize(&inv, pool);
                    let tid = pe.spawn(prog).expect("idle thread count was checked");
                    self.note_spawn(p, tid, inv.object);
                    if let Some(s) = sink.as_deref_mut() {
                        s.emit(TraceEvent::HandlerStart {
                            cycle: now.0,
                            pe: p,
                            thread: tid.0,
                            object: inv.object.0,
                        });
                    }
                    woken[p] = true;
                    self.dispatched += 1;
                    self.dispatched_per_object[inv.object.0] += 1;
                }
            }
        }
        // Saturation mode: keep every context of the hosting PE occupied.
        for k in 0..self.saturate.len() {
            let (object, method) = self.saturate[k];
            let pe = self.placement[object.0];
            if pes[pe].idle_threads() == 0 {
                continue;
            }
            pes[pe].settle_accounting(now);
            woken[pe] = true;
            while pes[pe].idle_threads() > 0 {
                let prog = self.synthesize(
                    &PendingInvocation {
                        object,
                        method,
                        seq: 0,
                        reply_to: None,
                    },
                    pool,
                );
                let tid = pes[pe].spawn(prog).expect("idle thread count was checked");
                self.note_spawn(pe, tid, object);
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(TraceEvent::HandlerStart {
                        cycle: now.0,
                        pe,
                        thread: tid.0,
                        object: object.0,
                    });
                }
                self.dispatched += 1;
                self.dispatched_per_object[object.0] += 1;
            }
        }
    }

    /// Records which object's handler occupies hardware thread `(pe, tid)`
    /// for the platform's latency attribution.
    fn note_spawn(&mut self, pe: usize, tid: nw_types::ThreadId, object: ObjectId) {
        let slots = &mut self.thread_object[pe];
        if slots.len() <= tid.0 {
            slots.resize(tid.0 + 1, None);
        }
        slots[tid.0] = Some(object);
    }

    /// The object whose handler was last spawned on thread `(pe, tid)`, if
    /// any — the attribution source for service-offload latency samples.
    pub(crate) fn thread_object(&self, pe: usize, tid: usize) -> Option<ObjectId> {
        self.thread_object
            .get(pe)
            .and_then(|slots| slots.get(tid))
            .copied()
            .flatten()
    }

    /// Forgets every thread → object attribution on PE `pe`. Called when
    /// the platform hands out mutable PE access (`FppaPlatform::pe_mut`):
    /// the caller may spawn programs the runtime knows nothing about, and a
    /// stale entry would attribute such a program's service calls to
    /// whichever handler last ran on the thread. Dropping the whole PE's
    /// attributions errs on the side of recording nothing — in-flight
    /// probes already resolved their object at issue time, and handlers
    /// dispatched afterwards re-record on spawn.
    pub(crate) fn clear_thread_objects(&mut self, pe: usize) {
        if let Some(slots) = self.thread_object.get_mut(pe) {
            slots.fill(None);
        }
    }

    /// Returns the memoized handler skeleton for `(object, method)`,
    /// building and caching it on first use. The plan resolves everything
    /// static about the handler — method descriptor fields, service
    /// binding, the method's outgoing call edges with their destinations,
    /// reply and egress hand-offs — so per-invocation synthesis no longer
    /// walks the application's full edge list.
    fn plan_for(&mut self, object: ObjectId, method: MethodId) -> Arc<HandlerPlan> {
        if let Some(p) = self.plans.get(&(object, method)) {
            self.plan_hits += 1;
            return Arc::clone(p);
        }
        let m = self.app.method(object, method);
        let edges = self
            .app
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == object && e.from_method == method)
            .map(|(i, e)| {
                let callee = self.app.method(e.to, e.to_method);
                EdgePlan {
                    edge_idx: i,
                    calls_per_invocation: e.calls_per_invocation,
                    to: e.to,
                    to_method: e.to_method,
                    dst: self
                        .broker
                        .resolve(e.to)
                        .expect("placed objects are registered"),
                    arg_bytes: callee.arg_bytes,
                    twoway: callee.is_twoway(),
                    call_reply_bytes: callee.reply_bytes + Message::HEADER_LEN as u64,
                }
            })
            .collect();
        let plan = Arc::new(HandlerPlan {
            domain: m.domain,
            local_bytes: m.local_bytes,
            service: self.services.get(&object).copied(),
            compute_cycles: m.compute_cycles,
            edges,
            reply_body_bytes: m.reply_bytes,
            egress: self.egress.get(&object).copied(),
        });
        self.plans.insert((object, method), Arc::clone(&plan));
        plan
    }

    /// `(hits, cached plans)` of the handler-plan cache.
    pub fn plan_cache_stats(&self) -> (u64, usize) {
        (self.plan_hits, self.plans.len())
    }

    /// Synthesizes the handler program for one invocation from its memoized
    /// plan; only the fractional-multiplicity carry and message sequence
    /// numbers vary between invocations of the same `(object, method)`.
    /// Marshalled message buffers come from the payload arena; the bodies
    /// are all-zero (only sizes are simulated), so the zero-body encoder
    /// writes them without an intermediate body vector.
    fn synthesize(&mut self, inv: &PendingInvocation, pool: &mut PayloadPool) -> Program {
        let plan = self.plan_for(inv.object, inv.method);
        let mut ops = Vec::new();
        if plan.local_bytes > 0 {
            ops.push(Op::LocalMem {
                write: false,
                bytes: plan.local_bytes,
            });
        }
        // Service offloads precede the compute burst: the handler fetches
        // its operands (reference windows, cipher blocks) from the bound
        // service node, blocking the thread per round trip.
        if let Some(svc) = plan.service {
            for _ in 0..svc.calls {
                ops.push(Op::Call {
                    dst: svc.node,
                    bytes: svc.request_bytes,
                    reply_bytes: svc.reply_bytes,
                    data: Vec::new(),
                });
            }
        }
        if plan.compute_cycles > 0 {
            ops.push(Op::Compute(plan.compute_cycles));
        }
        // Downstream calls, with deterministic fractional-multiplicity carry.
        for e in &plan.edges {
            self.edge_carry[e.edge_idx] += e.calls_per_invocation;
            let count = self.edge_carry[e.edge_idx].floor() as u64;
            self.edge_carry[e.edge_idx] -= count as f64;
            for _ in 0..count {
                let seq = self.next_seq();
                let mut data = pool.take();
                Message::encode_zeroed_into(
                    MessageKind::Invocation,
                    e.to,
                    e.to_method,
                    seq,
                    e.arg_bytes as usize,
                    &mut data,
                );
                let bytes = data.len() as u64;
                if e.twoway {
                    ops.push(Op::Call {
                        dst: e.dst,
                        bytes,
                        reply_bytes: e.call_reply_bytes,
                        data,
                    });
                } else {
                    ops.push(Op::Send {
                        dst: e.dst,
                        bytes,
                        data,
                        tag: 0,
                    });
                }
            }
        }
        // Twoway: answer the caller with the echoed request tag. The reply
        // also echoes the request's sequence number (the invocation tag),
        // so the round trip is correlated end-to-end on the wire — same
        // marshalled size either way, so timing is unchanged.
        if let Some((reply_to, tag)) = inv.reply_to {
            let mut data = pool.take();
            Message::encode_zeroed_into(
                MessageKind::Reply,
                inv.object,
                inv.method,
                inv.seq,
                plan.reply_body_bytes as usize,
                &mut data,
            );
            let bytes = data.len() as u64;
            ops.push(Op::Send {
                dst: reply_to,
                bytes,
                data,
                tag: RequestTag::decode(tag).encode_reply(),
            });
        }
        // Egress hand-off.
        if let Some((io_node, packet_bytes)) = plan.egress {
            ops.push(Op::Send {
                dst: io_node,
                bytes: packet_bytes,
                data: Vec::new(),
                tag: 0,
            });
        }
        Program::new(ops, domain_to_kernel(plan.domain))
    }

    /// Invocations currently queued (all PEs).
    pub fn queued_invocations(&self) -> usize {
        self.pending_total
    }
}

/// Maps the DSOC domain tag to the PE kernel domain.
pub(crate) fn domain_to_kernel(d: Domain) -> KernelDomain {
    match d {
        Domain::Control => KernelDomain::Control,
        Domain::Signal => KernelDomain::Signal,
        Domain::PacketHeader => KernelDomain::PacketHeader,
        Domain::Generic => KernelDomain::Generic,
    }
}

// ---- FppaPlatform runtime API ------------------------------------------

use crate::platform::FppaPlatform;

impl FppaPlatform {
    /// Installs a DSOC application with `placement[object] = pe index`.
    ///
    /// # Errors
    ///
    /// See [`InstallError`].
    pub fn install_app(
        &mut self,
        app: &Application,
        placement: &[usize],
    ) -> Result<(), InstallError> {
        let pe_nodes: Vec<NodeId> = (0..self.pes_slice().len())
            .map(|i| self.pe_node(i))
            .collect();
        let rt = Runtime::new(
            app.clone(),
            placement.to_vec(),
            &pe_nodes,
            self.pes_slice().len(),
            self.ios_slice().len(),
        )?;
        self.runtime = Some(rt);
        self.reset_latency_telemetry(app.objects().len());
        Ok(())
    }

    /// Drives entry-point `object` at `rate` invocations per cycle
    /// (deterministic pacing).
    ///
    /// # Panics
    ///
    /// Panics if no application is installed or the object is not an entry
    /// point — both are setup bugs in the calling experiment.
    pub fn drive_entry(&mut self, object: ObjectId, rate: f64) {
        self.runtime
            .as_mut()
            .expect("install_app before drive_entry")
            .add_drive(object, rate)
            .expect("drive_entry requires an application entry point");
    }

    /// Keeps the PE hosting `object` saturated with entry invocations
    /// (utilization rigs).
    ///
    /// # Panics
    ///
    /// Panics if no application is installed or the object is not an entry
    /// point.
    pub fn saturate_entry(&mut self, object: ObjectId) {
        self.runtime
            .as_mut()
            .expect("install_app before saturate_entry")
            .add_saturation(object)
            .expect("saturate_entry requires an application entry point");
    }

    /// Feeds entry-point `object` from I/O channel `io` at line rate.
    ///
    /// # Errors
    ///
    /// See [`InstallError`].
    pub fn bind_io_entry(&mut self, io: usize, object: ObjectId) -> Result<(), InstallError> {
        self.runtime
            .as_mut()
            .ok_or(InstallError::NoApp)?
            .bind_io(io, object)
    }

    /// Routes completions of `object` to I/O channel `io` as transmitted
    /// packets of `packet_bytes`.
    ///
    /// # Errors
    ///
    /// See [`InstallError`].
    pub fn bind_egress(
        &mut self,
        object: ObjectId,
        io: usize,
        packet_bytes: u64,
    ) -> Result<(), InstallError> {
        if io >= self.ios_slice().len() {
            return Err(InstallError::IoOutOfRange(io));
        }
        let io_node = self.io_node(io);
        self.runtime
            .as_mut()
            .ok_or(InstallError::NoApp)?
            .bind_egress(object, io_node, packet_bytes)
    }

    /// Installs a per-invocation service offload on `object`: every
    /// synthesized handler performs `calls` synchronous
    /// `request_bytes`/`reply_bytes` round trips to the service at `node`
    /// (a memory macro, eFPGA fabric or hardwired IP endpoint) before its
    /// compute burst.
    ///
    /// # Errors
    ///
    /// [`InstallError::NotAServiceNode`] if `node` does not host a memory,
    /// fabric or hwip block; otherwise see [`InstallError`].
    pub fn bind_service(
        &mut self,
        object: ObjectId,
        node: NodeId,
        request_bytes: u64,
        reply_bytes: u64,
        calls: u32,
    ) -> Result<(), InstallError> {
        match self.role(node) {
            Some(
                crate::platform::NodeRole::Memory(_)
                | crate::platform::NodeRole::Fabric(_)
                | crate::platform::NodeRole::HwIp(_),
            ) => {}
            _ => return Err(InstallError::NotAServiceNode(node)),
        }
        self.runtime
            .as_mut()
            .ok_or(InstallError::NoApp)?
            .bind_service(
                object,
                ServiceBinding {
                    node,
                    request_bytes,
                    reply_bytes,
                    calls,
                },
            )
    }

    /// [`FppaPlatform::bind_service`] plus a per-object deadline budget:
    /// every end-to-end round trip attributed to `object` — its service
    /// offload calls here, and any twoway invocations it answers — that
    /// exceeds `deadline_cycles` counts as a deadline miss in
    /// [`PlatformReport::latency`].
    ///
    /// [`PlatformReport::latency`]: crate::report::PlatformReport::latency
    ///
    /// # Errors
    ///
    /// See [`FppaPlatform::bind_service`].
    pub fn bind_service_with_deadline(
        &mut self,
        object: ObjectId,
        node: NodeId,
        request_bytes: u64,
        reply_bytes: u64,
        calls: u32,
        deadline_cycles: u64,
    ) -> Result<(), InstallError> {
        self.bind_service(object, node, request_bytes, reply_bytes, calls)?;
        self.set_latency_deadline(object, deadline_cycles)
    }

    /// The installed runtime, if any.
    pub fn runtime(&self) -> Option<&Runtime> {
        self.runtime.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_dsoc::{MethodDef, ObjectDef};

    /// Caller (twoway, with local state and compute) fanning out two calls
    /// per invocation to a oneway sink — exercises every plan section.
    fn two_stage_app() -> Application {
        let mut b = Application::builder("memo");
        let a = b.add_object(
            ObjectDef::new("a").with_method(
                MethodDef::twoway("go", 16, 8)
                    .with_compute(40)
                    .with_local_bytes(32),
            ),
        );
        let c = b.add_object(ObjectDef::new("c").with_method(MethodDef::oneway("sink", 24)));
        b.connect(a, 0, c, 0, 2.0);
        b.entry(a, 0);
        b.build().expect("valid test app")
    }

    fn runtime() -> Runtime {
        let pe_nodes = [NodeId(0), NodeId(1)];
        Runtime::new(two_stage_app(), vec![0, 1], &pe_nodes, 2, 0).expect("valid placement")
    }

    /// Op equality modulo marshalled payload bytes (sequence numbers vary
    /// between invocations by design; everything timing-relevant must not).
    fn same_shape(a: &Op, b: &Op) -> bool {
        match (a, b) {
            (Op::Compute(x), Op::Compute(y)) => x == y,
            (
                Op::LocalMem {
                    write: wa,
                    bytes: ba,
                },
                Op::LocalMem {
                    write: wb,
                    bytes: bb,
                },
            ) => wa == wb && ba == bb,
            (
                Op::Send {
                    dst: da,
                    bytes: ba,
                    tag: ta,
                    data: xa,
                },
                Op::Send {
                    dst: db,
                    bytes: bb,
                    tag: tb,
                    data: xb,
                },
            ) => da == db && ba == bb && ta == tb && xa.len() == xb.len(),
            (
                Op::Call {
                    dst: da,
                    bytes: ba,
                    reply_bytes: ra,
                    data: xa,
                },
                Op::Call {
                    dst: db,
                    bytes: bb,
                    reply_bytes: rb,
                    data: xb,
                },
            ) => da == db && ba == bb && ra == rb && xa.len() == xb.len(),
            _ => false,
        }
    }

    #[test]
    fn handler_plan_cache_returns_identical_programs() {
        let mut rt = runtime();
        let inv = PendingInvocation {
            object: ObjectId(0),
            method: MethodId(0),
            seq: 0,
            reply_to: None,
        };
        let mut pool = PayloadPool::new();
        let first = rt.synthesize(&inv, &mut pool);
        let (hits_after_first, plans) = rt.plan_cache_stats();
        assert_eq!(plans, 1, "one plan per (object, method)");
        let second = rt.synthesize(&inv, &mut pool);
        let (hits_after_second, plans) = rt.plan_cache_stats();
        assert_eq!(plans, 1, "second synthesis reuses the cached plan");
        assert!(hits_after_second > hits_after_first, "cache must hit");

        // Identical programs: same length, domain and op timing shape
        // (2.0 calls/invocation is integral, so the carry emits exactly
        // two downstream sends every time).
        assert_eq!(first.len(), second.len());
        assert_eq!(first.domain(), second.domain());
        for (x, y) in first.ops().iter().zip(second.ops()) {
            assert!(same_shape(x, y), "{x:?} vs {y:?}");
        }

        // And the cached path is byte-identical to a cold runtime at the
        // same sequence state.
        let mut cold = runtime();
        let cold_first = cold.synthesize(&inv, &mut PayloadPool::new());
        assert_eq!(first, cold_first);
    }

    #[test]
    fn thread_attribution_records_and_clears() {
        let mut rt = runtime();
        assert_eq!(rt.thread_object(0, 1), None);
        rt.note_spawn(0, nw_types::ThreadId(1), ObjectId(0));
        assert_eq!(rt.thread_object(0, 1), Some(ObjectId(0)));
        // Manual PE access (FppaPlatform::pe_mut) must forget the PE's
        // attributions so foreign programs never inherit them.
        rt.clear_thread_objects(0);
        assert_eq!(rt.thread_object(0, 1), None);
        // Out-of-range lookups and clears are harmless no-ops.
        assert_eq!(rt.thread_object(9, 9), None);
        rt.clear_thread_objects(9);
    }

    #[test]
    fn plan_is_shared_not_rebuilt() {
        let mut rt = runtime();
        let a = rt.plan_for(ObjectId(0), MethodId(0));
        let b = rt.plan_for(ObjectId(0), MethodId(0));
        assert!(Arc::ptr_eq(&a, &b), "plan must be cached, not rebuilt");
    }

    #[test]
    fn binding_changes_invalidate_plans() {
        let mut rt = runtime();
        let before = rt.plan_for(ObjectId(0), MethodId(0));
        assert!(before.service.is_none());
        rt.bind_service(
            ObjectId(0),
            ServiceBinding {
                node: NodeId(1),
                request_bytes: 8,
                reply_bytes: 64,
                calls: 3,
            },
        )
        .expect("object exists");
        let after = rt.plan_for(ObjectId(0), MethodId(0));
        assert!(!Arc::ptr_eq(&before, &after), "bind must invalidate");
        assert_eq!(
            after.service,
            Some(ServiceBinding {
                node: NodeId(1),
                request_bytes: 8,
                reply_bytes: 64,
                calls: 3,
            })
        );
        // The synthesized handler now front-loads the three service calls.
        let prog = rt.synthesize(
            &PendingInvocation {
                object: ObjectId(0),
                method: MethodId(0),
                seq: 0,
                reply_to: None,
            },
            &mut PayloadPool::new(),
        );
        assert_eq!(prog.call_count(), 3);
    }
}
