//! NoC packet-tag codec for request/response correlation.
//!
//! Every synchronous round trip on the platform — a DSOC twoway call, a
//! remote memory read, an accelerator request — carries a tag identifying
//! the requesting hardware thread, so the reply can wake exactly that
//! context without decoding payloads. The layout:
//!
//! ```text
//! bit 63        reply flag (set on the response leg)
//! bits 48..63   requesting PE index
//! bits 40..48   requesting thread index
//! bits 32..40   retry token (attempt correlation; 0 unless the
//!               resilience layer re-issues a timed-out request)
//! bits 0..32    expected reply payload bytes (service nodes size their
//!               response from this)
//! ```
//!
//! The retry token echoes through service nodes untouched (replies are
//! built with [`RequestTag::encode_reply`] on the decoded tag), so a
//! requester can tell a live attempt's reply from a stale one that
//! arrived after its timeout fired. Token 0 — the only value ever used
//! when fault injection is off — encodes bit-identically to the historical
//! tokenless layout.

use nw_types::{PeId, ThreadId};

const REPLY_FLAG: u64 = 1 << 63;
const PE_SHIFT: u32 = 48;
const TID_SHIFT: u32 = 40;
const TOKEN_SHIFT: u32 = 32;
const PE_MASK: u64 = 0x7FFF;
const TID_MASK: u64 = 0xFF;
const TOKEN_MASK: u64 = 0xFF;
const BYTES_MASK: u64 = (1 << 32) - 1;

/// A decoded request tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTag {
    /// Requesting PE.
    pub pe: PeId,
    /// Requesting hardware thread.
    pub tid: ThreadId,
    /// Retry attempt token (0 for first attempts and whenever the
    /// resilience layer is off).
    pub token: u8,
    /// Expected reply payload size in bytes.
    pub reply_bytes: u64,
}

impl RequestTag {
    /// Encodes the request-leg tag.
    ///
    /// # Panics
    ///
    /// Panics if the PE index exceeds 15 bits, the thread index exceeds
    /// 8 bits, or `reply_bytes` exceeds 32 bits — all far beyond any
    /// plausible platform.
    pub fn encode(self) -> u64 {
        assert!(self.pe.0 as u64 <= PE_MASK, "PE index too large for tag");
        assert!(
            self.tid.0 as u64 <= TID_MASK,
            "thread index too large for tag"
        );
        assert!(
            self.reply_bytes <= BYTES_MASK,
            "reply size too large for tag"
        );
        ((self.pe.0 as u64) << PE_SHIFT)
            | ((self.tid.0 as u64) << TID_SHIFT)
            | ((self.token as u64) << TOKEN_SHIFT)
            | self.reply_bytes
    }

    /// Encodes the reply-leg tag (reply flag set).
    pub fn encode_reply(self) -> u64 {
        self.encode() | REPLY_FLAG
    }

    /// Decodes either leg.
    pub fn decode(tag: u64) -> RequestTag {
        RequestTag {
            pe: PeId(((tag >> PE_SHIFT) & PE_MASK) as usize),
            tid: ThreadId(((tag >> TID_SHIFT) & TID_MASK) as usize),
            token: ((tag >> TOKEN_SHIFT) & TOKEN_MASK) as u8,
            reply_bytes: tag & BYTES_MASK,
        }
    }
}

/// Whether a tag is a reply-leg tag.
pub fn is_reply(tag: u64) -> bool {
    tag & REPLY_FLAG != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = RequestTag {
            pe: PeId(129),
            tid: ThreadId(7),
            token: 0,
            reply_bytes: 24,
        };
        let enc = t.encode();
        assert!(!is_reply(enc));
        assert_eq!(RequestTag::decode(enc), t);
        let rep = t.encode_reply();
        assert!(is_reply(rep));
        assert_eq!(RequestTag::decode(rep), t);
    }

    #[test]
    fn zero_tag_decodes_to_defaults() {
        let t = RequestTag::decode(0);
        assert_eq!(t.pe, PeId(0));
        assert_eq!(t.tid, ThreadId(0));
        assert_eq!(t.token, 0);
        assert_eq!(t.reply_bytes, 0);
        assert!(!is_reply(0));
    }

    #[test]
    fn extremes_roundtrip() {
        let t = RequestTag {
            pe: PeId(0x7FFF),
            tid: ThreadId(0xFF),
            token: 0xFF,
            reply_bytes: BYTES_MASK,
        };
        assert_eq!(RequestTag::decode(t.encode_reply()), t);
    }

    #[test]
    fn zero_token_matches_tokenless_layout() {
        // The historical layout had no token field; bits 32..40 were the
        // upper bits of reply_bytes. Token 0 with any realistic reply size
        // (< 4 GiB) must therefore encode to the identical word, keeping
        // faults-off runs bit-identical to pre-resilience builds.
        let t = RequestTag {
            pe: PeId(12),
            tid: ThreadId(3),
            token: 0,
            reply_bytes: 4096,
        };
        let legacy = (12u64 << 48) | (3u64 << 40) | 4096;
        assert_eq!(t.encode(), legacy);
    }

    #[test]
    fn token_survives_reply_leg() {
        let t = RequestTag {
            pe: PeId(4),
            tid: ThreadId(1),
            token: 17,
            reply_bytes: 64,
        };
        let echoed = RequestTag::decode(t.encode());
        assert_eq!(echoed.token, 17);
        assert_eq!(RequestTag::decode(echoed.encode_reply()).token, 17);
    }

    #[test]
    #[should_panic(expected = "PE index too large")]
    fn oversized_pe_panics() {
        RequestTag {
            pe: PeId(1 << 20),
            tid: ThreadId(0),
            token: 0,
            reply_bytes: 0,
        }
        .encode();
    }
}
