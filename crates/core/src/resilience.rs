//! Graceful degradation: retry/timeout bookkeeping and fault statistics.
//!
//! The platform applies a [`nw_fault::FaultCampaign`] through explicit
//! hooks (NoC port stalls, link kills, packet drop/corruption, PE
//! crash/restart); this module holds the *recovery* side — the
//! deterministic retry layer for synchronous calls and the counters the
//! [`PlatformReport`](crate::report::PlatformReport) surfaces.
//!
//! # Retry contract
//!
//! With a [`RetryPolicy`] installed, every `Op::Call` the platform
//! collects opens a pending entry keyed on the issuing hardware thread:
//! the cloned request payload, the destination, and a deadline
//! `issue + timeout`. The request tag carries a per-thread **token**
//! (bits 32..40 of [`RequestTag`](crate::tags::RequestTag)) that echoes
//! through service nodes and DSOC replies untouched:
//!
//! * a reply whose token matches the live entry closes it;
//! * a reply with a stale token (an earlier attempt that was slow, not
//!   lost) is dropped and counted in
//!   [`ResilienceStats::duplicate_replies_dropped`];
//! * a deadline that fires re-issues the stored payload with a bumped
//!   token and doubles the next timeout (deterministic exponential
//!   backoff);
//! * after [`RetryPolicy::max_attempts`] total attempts the call is
//!   abandoned: the blocked thread is completed so the handler can make
//!   progress, and the give-up is counted.
//!
//! Everything is a pure function of simulation state — deadlines are
//! cycle numbers, tokens are per-thread counters — so fault runs stay
//! bit-identical across scheduler modes and across repeats of a seed.

use nw_types::NodeId;
use std::collections::BTreeMap;

/// Deterministic retry/timeout policy for synchronous calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles a call may stay unanswered before its first retry fires.
    /// Subsequent attempts double the window (capped exponential backoff).
    pub timeout: u64,
    /// Total attempts (first issue included) before the call is abandoned
    /// and the blocked thread is released. Minimum 1.
    pub max_attempts: u8,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 4_096,
            max_attempts: 4,
        }
    }
}

impl RetryPolicy {
    /// The deadline window of attempt `attempt` (0 = first issue):
    /// `timeout << attempt`, saturating at `u64::MAX` instead of wrapping.
    pub fn window(&self, attempt: u8) -> u64 {
        let shift = u32::from(attempt.min(16));
        if self.timeout == 0 {
            0
        } else if shift > self.timeout.leading_zeros() {
            u64::MAX
        } else {
            self.timeout << shift
        }
    }
}

/// One in-flight synchronous call tracked for retry.
#[derive(Debug, Clone)]
pub(crate) struct PendingCall {
    /// Cycle the current attempt times out.
    pub deadline: u64,
    /// Attempts issued so far minus one (0 = first issue outstanding).
    pub attempt: u8,
    /// Token stamped on the current attempt's tag.
    pub token: u8,
    /// Destination endpoint (re-used verbatim on retry).
    pub dst: NodeId,
    /// Expected reply payload size (tag field).
    pub reply_bytes: u64,
    /// Pool-accounted clone of the request payload, ready to re-send.
    pub data: Vec<u8>,
}

/// Outcome of matching an arriving reply against the retry table.
#[derive(Debug)]
pub(crate) enum CloseOutcome {
    /// The live attempt's reply: entry closed, stored payload returned for
    /// recycling. Deliver the completion.
    Live(Vec<u8>),
    /// A stale attempt's reply (token mismatch): drop it, keep waiting.
    Stale,
    /// No entry for this thread (already gave up, or the PE crashed):
    /// deliver only if the thread is actually awaiting.
    Unknown,
}

/// The retry table: per-thread pending calls plus token counters.
#[derive(Debug, Clone)]
pub(crate) struct ResilienceState {
    pub policy: RetryPolicy,
    /// Pending synchronous calls keyed `(pe, tid)` — BTreeMap so due-scan
    /// order is deterministic.
    pending: BTreeMap<(usize, usize), PendingCall>,
    /// Per-thread token counter; bumps on every open so replies from an
    /// abandoned call can never correlate with a later one.
    salts: BTreeMap<(usize, usize), u8>,
}

impl ResilienceState {
    pub fn new(policy: RetryPolicy) -> Self {
        ResilienceState {
            policy,
            pending: BTreeMap::new(),
            salts: BTreeMap::new(),
        }
    }

    /// Opens a pending entry for a freshly issued call and returns the
    /// token to stamp on its tag.
    pub fn open(
        &mut self,
        pe: usize,
        tid: usize,
        dst: NodeId,
        reply_bytes: u64,
        data: Vec<u8>,
        now: u64,
    ) -> u8 {
        let salt = self.salts.entry((pe, tid)).or_insert(0);
        *salt = salt.wrapping_add(1);
        let token = *salt;
        self.pending.insert(
            (pe, tid),
            PendingCall {
                deadline: now + self.policy.window(0),
                attempt: 0,
                token,
                dst,
                reply_bytes,
                data,
            },
        );
        token
    }

    /// Advances the pending entry of `(pe, tid)` to its next attempt:
    /// fresh token from the thread's salt counter, attempt count up, new
    /// deadline with the doubled backoff window. No-op if nothing pends.
    pub fn bump(&mut self, pe: usize, tid: usize, now: u64) {
        let salt = self.salts.entry((pe, tid)).or_insert(0);
        *salt = salt.wrapping_add(1);
        let token = *salt;
        let policy = self.policy;
        if let Some(e) = self.pending.get_mut(&(pe, tid)) {
            e.attempt = e.attempt.saturating_add(1);
            e.token = token;
            e.deadline = now + policy.window(e.attempt);
        }
    }

    /// Matches a reply for thread `(pe, tid)` carrying `token`.
    pub fn close(&mut self, pe: usize, tid: usize, token: u8) -> CloseOutcome {
        match self.pending.get(&(pe, tid)) {
            Some(entry) if entry.token == token => {
                let entry = self.pending.remove(&(pe, tid)).expect("entry just matched");
                CloseOutcome::Live(entry.data)
            }
            Some(_) => CloseOutcome::Stale,
            None => CloseOutcome::Unknown,
        }
    }

    /// Keys whose deadline has fired at `now`, in deterministic order.
    pub fn due_keys(&self, now: u64) -> Vec<(usize, usize)> {
        self.pending
            .iter()
            .filter(|(_, e)| e.deadline <= now)
            .map(|(&k, _)| k)
            .collect()
    }

    pub fn get_mut(&mut self, pe: usize, tid: usize) -> Option<&mut PendingCall> {
        self.pending.get_mut(&(pe, tid))
    }

    /// Removes an entry (give-up, crash), returning its payload.
    pub fn abandon(&mut self, pe: usize, tid: usize) -> Option<Vec<u8>> {
        self.pending.remove(&(pe, tid)).map(|e| e.data)
    }

    /// Drops every entry of PE `pe` (crash), returning the payloads.
    pub fn abandon_pe(&mut self, pe: usize) -> Vec<Vec<u8>> {
        let keys: Vec<_> = self
            .pending
            .range((pe, 0)..(pe + 1, 0))
            .map(|(&k, _)| k)
            .collect();
        keys.into_iter()
            .filter_map(|k| self.pending.remove(&k).map(|e| e.data))
            .collect()
    }

    /// The earliest pending deadline — folded into the scheduler
    /// fast-forward paths so a quiet span never skips a timeout.
    pub fn earliest_deadline(&self) -> Option<u64> {
        self.pending.values().map(|e| e.deadline).min()
    }

    /// Pending entries (observability/tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Fault-injection and recovery counters of one run.
///
/// All zeros when fault injection is off — the report field then compares
/// equal between faulted and legacy builds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Campaign events applied (all kinds).
    pub faults_injected: u64,
    /// Permanent link kills that triggered degraded-mode rerouting.
    pub links_failed: u64,
    /// Route-table recomputations around dead links.
    pub reroutes: u64,
    /// Packets discarded by the NoC (injected drops + disconnections).
    pub packets_dropped: u64,
    /// Flits those packets carried.
    pub flits_dropped: u64,
    /// Packets whose payload was corrupted in place.
    pub packets_corrupted: u64,
    /// PE crash events applied.
    pub pe_crashes: u64,
    /// PE restart events applied.
    pub pe_restarts: u64,
    /// Timed-out calls re-issued by the retry layer.
    pub retries: u64,
    /// Calls abandoned after exhausting their attempt budget.
    pub retry_give_ups: u64,
    /// Replies dropped as stale duplicates (token mismatch or no
    /// outstanding call).
    pub duplicate_replies_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_roundtrip() {
        let mut rs = ResilienceState::new(RetryPolicy::default());
        let tok = rs.open(1, 2, NodeId(5), 64, vec![1, 2, 3], 100);
        assert_eq!(rs.pending_len(), 1);
        assert_eq!(rs.earliest_deadline(), Some(100 + 4_096));
        match rs.close(1, 2, tok) {
            CloseOutcome::Live(data) => assert_eq!(data, vec![1, 2, 3]),
            other => panic!("expected live close, got {other:?}"),
        }
        assert_eq!(rs.pending_len(), 0);
        assert!(matches!(rs.close(1, 2, tok), CloseOutcome::Unknown));
    }

    #[test]
    fn stale_token_is_detected() {
        let mut rs = ResilienceState::new(RetryPolicy::default());
        let tok = rs.open(0, 0, NodeId(1), 8, Vec::new(), 0);
        let entry = rs.get_mut(0, 0).expect("entry open");
        entry.attempt = 1;
        entry.token = tok.wrapping_add(1);
        assert!(matches!(rs.close(0, 0, tok), CloseOutcome::Stale));
        assert!(matches!(
            rs.close(0, 0, tok.wrapping_add(1)),
            CloseOutcome::Live(_)
        ));
    }

    #[test]
    fn tokens_never_repeat_across_reopens() {
        let mut rs = ResilienceState::new(RetryPolicy::default());
        let a = rs.open(0, 0, NodeId(1), 8, Vec::new(), 0);
        rs.abandon(0, 0);
        let b = rs.open(0, 0, NodeId(1), 8, Vec::new(), 50);
        assert_ne!(a, b, "a reopened call must get a fresh token");
    }

    #[test]
    fn due_scan_and_pe_abandon() {
        let mut rs = ResilienceState::new(RetryPolicy {
            timeout: 10,
            max_attempts: 3,
        });
        rs.open(0, 0, NodeId(1), 8, vec![1], 0);
        rs.open(0, 1, NodeId(1), 8, vec![2], 5);
        rs.open(2, 0, NodeId(1), 8, vec![3], 0);
        assert_eq!(rs.due_keys(10), vec![(0, 0), (2, 0)]);
        assert_eq!(rs.due_keys(9), Vec::<(usize, usize)>::new());
        let dropped = rs.abandon_pe(0);
        assert_eq!(dropped, vec![vec![1], vec![2]]);
        assert_eq!(rs.pending_len(), 1);
        assert_eq!(rs.earliest_deadline(), Some(10));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            timeout: 100,
            max_attempts: 8,
        };
        assert_eq!(p.window(0), 100);
        assert_eq!(p.window(1), 200);
        assert_eq!(p.window(3), 800);
        let huge = RetryPolicy {
            timeout: u64::MAX / 2,
            max_attempts: 8,
        };
        assert_eq!(huge.window(3), u64::MAX, "backoff saturates, never wraps");
    }
}
