//! Platform configuration: declaring an FPPA instance.

use nw_fabric::FabricSpec;
use nw_hwip::IoChannelConfig;
use nw_mem::MemoryTechnology;
use nw_noc::{NocConfig, TopologyKind};
use nw_pe::PeConfig;
use nw_types::{AreaMm2, Picojoules, TechNode};
use std::fmt;

/// A memory macro attached to the NoC.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBlockConfig {
    /// Memory technology.
    pub technology: MemoryTechnology,
    /// Number of banks.
    pub banks: usize,
    /// Per-bank request queue depth.
    pub queue_depth: usize,
    /// Capacity in megabits (area accounting).
    pub mbits: f64,
}

impl MemoryBlockConfig {
    /// A 4-bank macro of the given technology and capacity.
    pub fn new(technology: MemoryTechnology, mbits: f64) -> Self {
        MemoryBlockConfig {
            technology,
            banks: 4,
            queue_depth: 16,
            mbits,
        }
    }
}

/// A hardwired IP block attached to the NoC.
#[derive(Debug, Clone)]
pub struct HwIpConfig {
    /// Block name.
    pub name: String,
    /// Initiation interval (cycles per accepted item).
    pub ii: u64,
    /// Pipeline latency.
    pub latency: u64,
    /// Die area.
    pub area: AreaMm2,
    /// Energy per item.
    pub energy_per_item: Picojoules,
}

/// Error from [`FppaPlatform::new`](crate::FppaPlatform::new).
#[derive(Debug, Clone, PartialEq)]
pub enum BuildPlatformError {
    /// The configuration declares no processing elements.
    NoPes,
    /// Topology construction failed.
    Topology(nw_noc::BuildTopologyError),
}

impl fmt::Display for BuildPlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPlatformError::NoPes => write!(f, "platform needs at least one PE"),
            BuildPlatformError::Topology(e) => write!(f, "topology: {e}"),
        }
    }
}

impl std::error::Error for BuildPlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildPlatformError::Topology(e) => Some(e),
            BuildPlatformError::NoPes => None,
        }
    }
}

impl From<nw_noc::BuildTopologyError> for BuildPlatformError {
    fn from(e: nw_noc::BuildTopologyError) -> Self {
        BuildPlatformError::Topology(e)
    }
}

/// Declarative description of an FPPA platform instance (Figure 2).
///
/// Components are assigned NoC endpoints in declaration order: all PEs
/// first, then memories, eFPGA fabrics, hardwired IP, and I/O channels.
#[derive(Debug, Clone)]
pub struct FppaConfig {
    /// Platform name (reports).
    pub name: String,
    /// NoC topology family.
    pub topology: TopologyKind,
    /// Technology node (sets the link latency via the wire-delay model when
    /// `link_latency` is `None`).
    pub tech: TechNode,
    /// NoC timing configuration.
    pub noc: NocConfig,
    /// Per-hop link latency override in cycles.
    pub link_latency: Option<u64>,
    /// Processing elements.
    pub pes: Vec<PeConfig>,
    /// Shared memory macros.
    pub memories: Vec<MemoryBlockConfig>,
    /// Embedded FPGA fabrics.
    pub fabrics: Vec<FabricSpec>,
    /// Hardwired IP blocks.
    pub hwip: Vec<HwIpConfig>,
    /// I/O channels.
    pub io: Vec<IoChannelConfig>,
}

impl FppaConfig {
    /// A platform at the paper's 0.13 µm "today" node with default NoC
    /// timing and no components (add PEs before building).
    pub fn new(name: &str, topology: TopologyKind) -> Self {
        FppaConfig {
            name: name.to_owned(),
            topology,
            tech: TechNode::N130,
            noc: NocConfig::default(),
            link_latency: None,
            pes: Vec::new(),
            memories: Vec::new(),
            fabrics: Vec::new(),
            hwip: Vec::new(),
            io: Vec::new(),
        }
    }

    /// Adds a PE, returning its index.
    pub fn add_pe(&mut self, pe: PeConfig) -> usize {
        self.pes.push(pe);
        self.pes.len() - 1
    }

    /// Adds a memory macro, returning its index.
    pub fn add_memory(&mut self, m: MemoryBlockConfig) -> usize {
        self.memories.push(m);
        self.memories.len() - 1
    }

    /// Adds an eFPGA fabric, returning its index.
    pub fn add_fabric(&mut self, f: FabricSpec) -> usize {
        self.fabrics.push(f);
        self.fabrics.len() - 1
    }

    /// Adds a hardwired IP block, returning its index.
    pub fn add_hwip(&mut self, h: HwIpConfig) -> usize {
        self.hwip.push(h);
        self.hwip.len() - 1
    }

    /// Adds an I/O channel, returning its index.
    pub fn add_io(&mut self, io: IoChannelConfig) -> usize {
        self.io.push(io);
        self.io.len() - 1
    }

    /// Total NoC endpoints the platform occupies.
    pub fn n_endpoints(&self) -> usize {
        self.pes.len() + self.memories.len() + self.fabrics.len() + self.hwip.len() + self.io.len()
    }

    /// Effective per-hop link latency: the override if set, otherwise the
    /// wire-delay model at this node for a die-edge/8 hop (mesh-scale hop
    /// length), at least 1 cycle.
    pub fn effective_link_latency(&self) -> u64 {
        self.link_latency.unwrap_or_else(|| {
            let hop_mm = self.tech.die_edge_mm() / 8.0;
            (nw_econ::cross_chip_delay_cycles(self.tech, hop_mm).ceil() as u64).max(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_pe::PeClass;

    #[test]
    fn endpoint_counting() {
        let mut c = FppaConfig::new("t", TopologyKind::Mesh);
        c.add_pe(PeConfig::new(PeClass::GpRisc, 2));
        c.add_pe(PeConfig::new(PeClass::GpRisc, 2));
        c.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 2.0));
        c.add_io(IoChannelConfig::ten_gbe_worst_case());
        assert_eq!(c.n_endpoints(), 4);
    }

    #[test]
    fn link_latency_override_and_model() {
        let mut c = FppaConfig::new("t", TopologyKind::Ring);
        assert!(c.effective_link_latency() >= 1);
        c.link_latency = Some(25);
        assert_eq!(c.effective_link_latency(), 25);
    }

    #[test]
    fn newer_node_raises_model_link_latency() {
        let mut a = FppaConfig::new("a", TopologyKind::Ring);
        a.tech = TechNode::N180;
        let mut b = FppaConfig::new("b", TopologyKind::Ring);
        b.tech = TechNode::N50;
        assert!(b.effective_link_latency() >= a.effective_link_latency());
    }
}
