//! nanowall — the FPPA platform of "System-on-Chip Beyond the Nanometer
//! Wall" (Magarshack & Paulin, DAC 2003), reproduced as a Rust library.
//!
//! The paper's Figure 2 sketches a *Field-Programmable Processor Array*
//! (FPPA): configurable multi-threaded processors, a network-on-chip, an
//! embedded FPGA, standardized hardware IP and line-rate I/O — programmed
//! through the DSOC distributed-object model and mapped automatically by
//! MultiFlex-style tools. This crate assembles exactly that system from the
//! workspace substrates:
//!
//! * [`config`] — [`FppaConfig`]: declare the platform (topology, technology
//!   node, PEs, memories, eFPGA, hardware IP, I/O channels).
//! * [`platform`] — [`FppaPlatform`]: the cycle-stepped machine, with every
//!   node class serviced behind the NoC.
//! * [`runtime`] — the DSOC runtime: installs an application + placement,
//!   synthesizes PE micro-op handler programs per invocation, marshals
//!   messages over the NoC, dispatches onto hardware threads, and services
//!   replies.
//! * [`report`] — [`PlatformReport`]: utilization, throughput, latency and
//!   energy after a run.
//! * [`scenarios`] — prebuilt rigs for the paper's experiments (the IPv4
//!   fast path at 10 Gb/s, the latency-hiding sweep, the Figure 2 tour,
//!   and the §7.1 application workloads from `nw-apps` — video codec,
//!   modem baseband, crypto offload), cataloged by name in the
//!   [`ScenarioRegistry`].
//!
//! # Quickstart
//!
//! ```
//! use nanowall::prelude::*;
//!
//! // A small FPPA: 4 dual-threaded RISC cores on a mesh.
//! let mut cfg = FppaConfig::new("quickstart", TopologyKind::Mesh);
//! for _ in 0..4 {
//!     cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
//! }
//!
//! // A two-object ping-pong application.
//! let mut b = Application::builder("pingpong");
//! let ping = b.add_object(ObjectDef::new("ping").with_method(
//!     MethodDef::oneway("go", 16).with_compute(50),
//! ));
//! let pong = b.add_object(ObjectDef::new("pong").with_method(
//!     MethodDef::oneway("ack", 16).with_compute(50),
//! ));
//! b.connect(ping, 0, pong, 0, 1.0);
//! b.entry(ping, 0);
//! let app = b.build()?;
//!
//! let mut platform = FppaPlatform::new(cfg)?;
//! platform.install_app(&app, &[0, 3])?;           // ping on pe0, pong on pe3
//! platform.drive_entry(ping, 0.01);               // 1 invocation / 100 cycles
//! let report = platform.run(20_000);
//! assert!(report.tasks_completed > 300);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod platform;
pub mod report;
pub mod resilience;
pub mod runtime;
pub mod scenarios;
pub mod tags;

pub use config::{BuildPlatformError, FppaConfig, HwIpConfig, MemoryBlockConfig};
pub use platform::{
    default_scheduler_mode, set_default_scheduler_mode, FppaPlatform, NodeRole, PlatformSnapshot,
    SchedulerMode,
};
pub use report::{ObjectLatency, PlatformReport};
pub use resilience::{ResilienceStats, RetryPolicy};
pub use runtime::{InstallError, ServiceBinding};
pub use scenarios::{ScenarioRegistry, ScenarioRig, ScenarioSpec};

/// Observability re-exports: the sim-domain trace taxonomy/sinks and the
/// host-domain phase profiler consumed through
/// [`FppaPlatform::set_trace_sink`] / [`FppaPlatform::set_host_profiler`].
pub use nw_obs::{
    export_chrome_trace, validate_chrome_trace, HostPhase, HostProfiler, NocHeatmap, PhaseSlice,
    ProfileReport, RingBufferSink, TraceEvent, TraceSink,
};

/// Fault-injection re-exports: deterministic campaign generation consumed
/// through [`FppaPlatform::install_fault_campaign`].
pub use nw_fault::{FabricShape, FaultCampaign, FaultEvent, FaultKind, FaultRates};

/// The convenient single import for examples and experiments.
pub mod prelude {
    pub use crate::{FppaConfig, FppaPlatform, NodeRole, PlatformReport, SchedulerMode};
    pub use nw_dsoc::{Application, Domain, MethodDef, ObjectDef};
    pub use nw_fabric::{FabricSpec, KernelSpec};
    pub use nw_hwip::{IoChannel, IoChannelConfig};
    pub use nw_mem::MemoryTechnology;
    pub use nw_noc::{NocConfig, TopologyKind};
    pub use nw_pe::{PeClass, PeConfig, SchedPolicy};
    pub use nw_types::{Cycles, NodeId, ObjectId, TechNode};
}
