//! The cycle-stepped FPPA platform.
//!
//! [`FppaPlatform`] wires every substrate together behind one NoC: PEs raise
//! [`PeRequest`]s that become packets, service nodes (memory, eFPGA,
//! hardwired IP) answer tagged requests, I/O channels pace ingress traffic
//! at line rate and absorb egress, and the DSOC runtime (in
//! [`runtime`](crate::runtime)) dispatches marshalled invocations onto
//! hardware threads.
//!
//! Within each cycle the platform advances in a fixed order — I/O pacing,
//! ingress injection, NoC, arrival routing, service nodes, DSOC dispatch,
//! PEs, request servicing, and the injection retry queue — which makes whole
//! runs bit-reproducible.
//!
//! [`PeRequest`]: nw_pe::PeRequest

use crate::config::{BuildPlatformError, FppaConfig};
use crate::report::PlatformReport;
use crate::resilience::{CloseOutcome, ResilienceState, ResilienceStats, RetryPolicy};
use crate::runtime::Runtime;
use crate::tags::{is_reply, RequestTag};
use nw_dsoc::{MessageKind, MessageView};
use nw_fabric::Efpga;
use nw_fault::{FabricShape, FaultCampaign, FaultKind};
use nw_hwip::{HwIpBlock, IoChannel};
use nw_mem::{MemRequest, MemoryController, MemorySpec, ReqKind};
use nw_noc::{Noc, PayloadPool, Topology};
use nw_obs::{HostPhase, HostProfiler, NocHeatmap, TraceEvent, TraceSink};
use nw_pe::{Pe, PeRequest};
use nw_sim::{Clock, Clocked, LatencyHistogram};
use nw_types::{AreaMm2, Cycles, NodeId, ObjectId, PeId, Picojoules};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::OnceCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};

/// How [`FppaPlatform::step`] visits components each cycle.
///
/// Both schedulers produce **bit-identical** simulations — same reports,
/// same statistics, same packet-level timing. `Dense` is the reference
/// implementation kept for differential testing; `ActiveSet` is the fast
/// path used by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Reference scheduler: every component is ticked every cycle.
    Dense,
    /// Event-driven scheduler: only components that are busy or have work
    /// due are ticked. Dormant PEs settle their busy/idle accounting in
    /// bulk, quiescent service nodes and NoC scans are skipped, and
    /// [`FppaPlatform::run`] fast-forwards over fully idle cycle spans.
    #[default]
    ActiveSet,
}

/// Process-wide default scheduler: 0 = unset, 1 = dense, 2 = active-set.
// nw-analyze: allow(ND03): configuration knob read once per platform construction; both
// scheduler modes simulate bit-identically (pinned by tests/scheduler_differential.rs).
static DEFAULT_SCHEDULER: AtomicU8 = AtomicU8::new(0);

/// Sets the scheduler mode newly built platforms start in (experiments
/// construct their platforms internally, so differential tests flip this
/// global to compare whole experiment tables across schedulers).
pub fn set_default_scheduler_mode(mode: SchedulerMode) {
    let v = match mode {
        SchedulerMode::Dense => 1,
        SchedulerMode::ActiveSet => 2,
    };
    DEFAULT_SCHEDULER.store(v, Ordering::SeqCst);
}

/// The scheduler mode newly built platforms start in: the value of
/// [`set_default_scheduler_mode`] if set, else the `NANOWALL_SCHED`
/// environment variable (`dense` / `active`), else [`SchedulerMode::ActiveSet`].
pub fn default_scheduler_mode() -> SchedulerMode {
    match DEFAULT_SCHEDULER.load(Ordering::SeqCst) {
        1 => SchedulerMode::Dense,
        2 => SchedulerMode::ActiveSet,
        _ => match std::env::var("NANOWALL_SCHED") {
            Ok(v) if v.eq_ignore_ascii_case("dense") => SchedulerMode::Dense,
            Ok(v) if v.eq_ignore_ascii_case("active") || v.eq_ignore_ascii_case("activeset") => {
                SchedulerMode::ActiveSet
            }
            Ok(v) => {
                eprintln!("NANOWALL_SCHED={v} not recognized (dense|active); using active");
                SchedulerMode::ActiveSet
            }
            Err(_) => SchedulerMode::ActiveSet,
        },
    }
}

/// What sits at one NoC endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Processing element (index into the PE list).
    Pe(usize),
    /// Memory controller.
    Memory(usize),
    /// Embedded FPGA fabric.
    Fabric(usize),
    /// Hardwired IP block.
    HwIp(usize),
    /// I/O channel.
    Io(usize),
}

/// A packet queued for injection (with retry-on-backpressure).
#[derive(Debug, Clone)]
pub(crate) struct Outgoing {
    pub src: NodeId,
    pub dst: NodeId,
    pub data: Vec<u8>,
    pub tag: u64,
    /// Thread to complete once the NI accepts the packet (async sends).
    pub on_accept: Option<(PeId, nw_types::ThreadId)>,
}

/// The assembled platform.
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug)]
pub struct FppaPlatform {
    cfg: FppaConfig,
    noc: Noc,
    pes: Vec<Pe>,
    mems: Vec<MemoryController>,
    fabrics: Vec<Efpga>,
    hwips: Vec<HwIpBlock>,
    ios: Vec<IoChannel>,
    roles: Vec<NodeRole>,
    pe_nodes: Vec<NodeId>,
    mem_nodes: Vec<NodeId>,
    fabric_nodes: Vec<NodeId>,
    hwip_nodes: Vec<NodeId>,
    io_nodes: Vec<NodeId>,
    clock: Clock,
    outbox: VecDeque<Outgoing>,
    /// In-flight service requests per memory: request id → (tag, reply-to).
    mem_inflight: Vec<BTreeMap<u64, (u64, NodeId)>>,
    /// Parked memory requests (bank queues full): (request, tag, reply-to).
    mem_parked: Vec<VecDeque<(MemRequest, u64, NodeId)>>,
    fabric_inflight: Vec<BTreeMap<u64, (u64, NodeId)>>,
    fabric_parked: Vec<VecDeque<(u64, NodeId)>>,
    hwip_inflight: Vec<BTreeMap<u64, (u64, NodeId)>>,
    hwip_parked: Vec<VecDeque<(u64, NodeId)>>,
    next_service_id: u64,
    pub(crate) runtime: Option<Runtime>,
    scheduler: SchedulerMode,
    /// Active-set scheduling: PEs that must be ticked this cycle. A `true`
    /// entry is conservative (ticking a dormant PE is an accounting no-op);
    /// a `false` entry is a guarantee the PE is dormant — every thread idle
    /// or blocked on a platform completion — so skipping its tick and
    /// bulk-settling the accounting later is bit-identical.
    pe_active: Vec<bool>,
    /// Lazily computed, cached hop matrix. The topology's link structure is
    /// immutable after construction, but *routes* can change when a link is
    /// permanently failed ([`FppaPlatform::fail_noc_link`] or a campaign
    /// fault) — every such change empties this cache so the next
    /// [`FppaPlatform::hop_matrix`] recomputes against the degraded tables.
    hop_cache: OnceCell<Vec<Vec<f64>>>,
    /// Recycling arena for packet payloads: consumed packet buffers return
    /// here in `route_arrivals`, and every payload producer (service
    /// replies, ingress invocations, handler-synthesized messages, PE
    /// request padding) draws from it instead of the allocator. Purely an
    /// allocation cache — contents and timing are bit-identical either way.
    pool: PayloadPool,
    /// In-flight synchronous round trip per hardware thread
    /// (`call_issue[pe][tid]`): the cycle the `Op::Call` issued and the
    /// application object the latency is attributed to. Stamped in
    /// [`FppaPlatform::collect_pe_requests`], consumed at reply delivery in
    /// `route_arrivals` — the end-to-end (request-issue → reply-delivery)
    /// invocation-latency probe. A blocked thread holds at most one call,
    /// so the slot needs no queue.
    call_issue: Vec<Vec<Option<(Cycles, ObjectId)>>>,
    /// Per-object end-to-end latency histograms, indexed by [`ObjectId`];
    /// sized when an application is installed.
    object_latency: Vec<LatencyHistogram>,
    /// Per-object deadline budgets in cycles (see
    /// [`FppaPlatform::set_latency_deadline`]).
    latency_deadlines: Vec<Option<u64>>,
    /// Recorded round trips that exceeded the object's deadline budget.
    deadline_misses: Vec<u64>,
    /// Sim-domain trace sink (see [`FppaPlatform::set_trace_sink`]). A pure
    /// observer: events are derived from simulation state and never fed
    /// back, so traced runs are bit-identical to untraced ones (pinned by
    /// the scheduler differential suite). `None` costs one branch per
    /// emission site.
    obs_sink: Option<Box<dyn TraceSink>>,
    /// Host-side wall-clock phase profiler (see
    /// [`FppaPlatform::set_host_profiler`]). Host-domain only — its
    /// readings never influence simulation state.
    profiler: Option<HostProfiler>,
    /// Installed fault campaign, drained cycle by cycle at the top of each
    /// step. `None` keeps every fault hook structurally untouched, so
    /// faults-off runs are bit-identical to builds without the subsystem.
    campaign: Option<FaultCampaign>,
    /// Retry/timeout bookkeeping (see [`FppaPlatform::set_retry_policy`]).
    /// `None` keeps the legacy reply path: tags carry token 0 and replies
    /// complete their thread unconditionally.
    resilience: Option<ResilienceState>,
    /// Fault/recovery counters surfaced through
    /// [`FppaPlatform::resilience_stats`]; all zero when faults are off.
    rstats: ResilienceStats,
    /// The replica seed last applied by [`FppaPlatform::reseed`] /
    /// [`FppaPlatform::fork`] (0 for a freshly built platform).
    seed: u64,
    /// Platform-owned RNG, checkpointed word-for-word by snapshots. The
    /// default simulation path never draws from it — determinism of
    /// existing runs does not depend on it — but forked replicas re-seed
    /// it (and the fault campaign's future) to diverge.
    rng: StdRng,
}

/// A plain-old-data checkpoint of a [`FppaPlatform`].
///
/// Captures the complete simulation state — PE/program state, NoC engine
/// state (queues, `busy_until` stamps, event-wheel wakes, the
/// [`PayloadPool`] ledger), runtime dispatch state (pending invocations,
/// retry deadlines, handler-plan cache), service/memory state, latency
/// histograms, resilience counters, and the RNG state words — such that
/// [`FppaPlatform::from_snapshot`] continues bit-identically to the
/// uninterrupted original.
///
/// Deliberately **not** captured (host-side observers, never simulation
/// state): the trace sink and the host profiler. [`FppaPlatform::restore`]
/// keeps the target's own observers across the restore.
#[derive(Debug)]
pub struct PlatformSnapshot {
    /// Full platform state with the host-side observers stripped.
    state: Box<FppaPlatform>,
    /// xoshiro256++ state words, captured via `StdRng::get_state`.
    rng_state: [u64; 4],
    /// Replica seed at capture time.
    seed: u64,
}

impl PlatformSnapshot {
    /// The simulation cycle the snapshot was taken at.
    pub fn cycle(&self) -> Cycles {
        self.state.clock.now()
    }

    /// The replica seed active at capture time.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl FppaPlatform {
    /// Builds the platform from its configuration.
    ///
    /// # Errors
    ///
    /// [`BuildPlatformError::NoPes`] for an empty platform;
    /// [`BuildPlatformError::Topology`] if the NoC cannot be built.
    pub fn new(cfg: FppaConfig) -> Result<Self, BuildPlatformError> {
        if cfg.pes.is_empty() {
            return Err(BuildPlatformError::NoPes);
        }
        let n = cfg.n_endpoints();
        let link_latency = cfg.effective_link_latency();
        let topo = Topology::build(cfg.topology, n, link_latency)?;
        // Credit-based flow control only keeps long links busy when the
        // buffer pool covers the credit round trip (the latency-bandwidth
        // product); undersized buffers cause tree saturation long before
        // the wires are full.
        let mut noc_cfg = cfg.noc;
        noc_cfg.input_buffer = noc_cfg
            .input_buffer
            .max(4 + (link_latency + noc_cfg.router_delay) as usize / 2);
        let noc = Noc::new(topo, noc_cfg);

        let mut roles = Vec::with_capacity(n);
        let mut pe_nodes = Vec::new();
        let mut mem_nodes = Vec::new();
        let mut fabric_nodes = Vec::new();
        let mut hwip_nodes = Vec::new();
        let mut io_nodes = Vec::new();

        let pes: Vec<Pe> = cfg.pes.iter().cloned().map(Pe::new).collect();
        for i in 0..pes.len() {
            pe_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Pe(i));
        }
        let mems: Vec<MemoryController> = cfg
            .memories
            .iter()
            .map(|m| {
                MemoryController::new(
                    MemorySpec::at_node(m.technology, cfg.tech),
                    m.banks,
                    m.queue_depth,
                )
            })
            .collect();
        for i in 0..mems.len() {
            mem_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Memory(i));
        }
        let fabrics: Vec<Efpga> = cfg.fabrics.iter().map(|f| Efpga::new(*f)).collect();
        for i in 0..fabrics.len() {
            fabric_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Fabric(i));
        }
        let hwips: Vec<HwIpBlock> = cfg
            .hwip
            .iter()
            .map(|h| HwIpBlock::new(&h.name, h.ii, h.latency, h.area, h.energy_per_item, 64))
            .collect();
        for i in 0..hwips.len() {
            hwip_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::HwIp(i));
        }
        let ios: Vec<IoChannel> = cfg.io.iter().map(|c| IoChannel::new(*c)).collect();
        for i in 0..ios.len() {
            io_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Io(i));
        }

        let n_mems = mems.len();
        let n_fabrics = fabrics.len();
        let n_hwips = hwips.len();
        let n_pes = pes.len();
        let call_issue = pes.iter().map(|p| vec![None; p.n_threads()]).collect();
        Ok(FppaPlatform {
            cfg,
            noc,
            pes,
            mems,
            fabrics,
            hwips,
            ios,
            roles,
            pe_nodes,
            mem_nodes,
            fabric_nodes,
            hwip_nodes,
            io_nodes,
            clock: Clock::new(),
            outbox: VecDeque::new(),
            mem_inflight: (0..n_mems).map(|_| BTreeMap::new()).collect(),
            mem_parked: (0..n_mems).map(|_| VecDeque::new()).collect(),
            fabric_inflight: (0..n_fabrics).map(|_| BTreeMap::new()).collect(),
            fabric_parked: (0..n_fabrics).map(|_| VecDeque::new()).collect(),
            hwip_inflight: (0..n_hwips).map(|_| BTreeMap::new()).collect(),
            hwip_parked: (0..n_hwips).map(|_| VecDeque::new()).collect(),
            next_service_id: 0,
            runtime: None,
            scheduler: default_scheduler_mode(),
            pe_active: vec![true; n_pes],
            hop_cache: OnceCell::new(),
            pool: PayloadPool::new(),
            call_issue,
            object_latency: Vec::new(),
            latency_deadlines: Vec::new(),
            deadline_misses: Vec::new(),
            obs_sink: None,
            profiler: None,
            campaign: None,
            resilience: None,
            rstats: ResilienceStats::default(),
            seed: 0,
            rng: StdRng::seed_from_u64(0),
        })
    }

    /// Clones the complete simulation state, stripping the host-side
    /// observers (trace sink, profiler) and their per-PE retire logs. The
    /// exhaustive field list keeps this total: adding a platform field
    /// without deciding its snapshot story is a compile error here.
    fn clone_state(&self) -> FppaPlatform {
        let mut pes = self.pes.clone();
        for pe in &mut pes {
            // Retire logs exist only to feed an installed trace sink; the
            // clone has none, so carrying them would grow unboundedly.
            pe.set_retire_log(false);
        }
        FppaPlatform {
            cfg: self.cfg.clone(),
            noc: self.noc.clone(),
            pes,
            mems: self.mems.clone(),
            fabrics: self.fabrics.clone(),
            hwips: self.hwips.clone(),
            ios: self.ios.clone(),
            roles: self.roles.clone(),
            pe_nodes: self.pe_nodes.clone(),
            mem_nodes: self.mem_nodes.clone(),
            fabric_nodes: self.fabric_nodes.clone(),
            hwip_nodes: self.hwip_nodes.clone(),
            io_nodes: self.io_nodes.clone(),
            clock: self.clock.clone(),
            outbox: self.outbox.clone(),
            mem_inflight: self.mem_inflight.clone(),
            mem_parked: self.mem_parked.clone(),
            fabric_inflight: self.fabric_inflight.clone(),
            fabric_parked: self.fabric_parked.clone(),
            hwip_inflight: self.hwip_inflight.clone(),
            hwip_parked: self.hwip_parked.clone(),
            next_service_id: self.next_service_id,
            runtime: self.runtime.clone(),
            scheduler: self.scheduler,
            pe_active: self.pe_active.clone(),
            hop_cache: self.hop_cache.clone(),
            pool: self.pool.clone(),
            call_issue: self.call_issue.clone(),
            object_latency: self.object_latency.clone(),
            latency_deadlines: self.latency_deadlines.clone(),
            deadline_misses: self.deadline_misses.clone(),
            obs_sink: None,
            profiler: None,
            campaign: self.campaign.clone(),
            resilience: self.resilience.clone(),
            rstats: self.rstats.clone(),
            seed: self.seed,
            rng: self.rng.clone(),
        }
    }

    /// Checkpoints the platform. The snapshot owns an independent copy of
    /// every piece of simulation state; the platform is untouched (host
    /// observers included) and can keep running.
    pub fn snapshot(&self) -> PlatformSnapshot {
        PlatformSnapshot {
            rng_state: self.rng.get_state(),
            seed: self.seed,
            state: Box::new(self.clone_state()),
        }
    }

    /// Rebuilds a platform from a snapshot. The result runs bit-identically
    /// to the platform the snapshot was taken from — same reports under
    /// both [`SchedulerMode`]s, with or without an active fault campaign —
    /// and starts with no trace sink or profiler installed.
    pub fn from_snapshot(snap: &PlatformSnapshot) -> FppaPlatform {
        let mut p = snap.state.clone_state();
        p.seed = snap.seed;
        p.rng = StdRng::from_state(snap.rng_state);
        p
    }

    /// Overwrites this platform's simulation state with the snapshot's,
    /// keeping the host-side observers (trace sink, profiler) this
    /// platform already has. Restoring under an installed sink re-enables
    /// the NoC heatmap and PE retire logging on the restored state.
    pub fn restore(&mut self, snap: &PlatformSnapshot) {
        let sink = self.obs_sink.take();
        let profiler = self.profiler.take();
        *self = FppaPlatform::from_snapshot(snap);
        self.profiler = profiler;
        if let Some(s) = sink {
            self.set_trace_sink(s);
        }
    }

    /// Spawns an independent measurement replica: a bit-exact copy of this
    /// warmed-up platform, re-seeded with `seed`. The replica shares the
    /// parent's entire history (queues, histograms, fault effects already
    /// applied) but its *future* randomness — the platform RNG stream and
    /// the undrained tail of an installed fault campaign — is redrawn from
    /// `seed`. Forking with the seed the campaign was generated from (or
    /// any seed, when no campaign is installed and the RNG is never drawn)
    /// reproduces the uninterrupted run exactly; distinct seeds give
    /// statistically independent replicas.
    pub fn fork(&self, seed: u64) -> FppaPlatform {
        let mut p = self.clone_state();
        p.reseed(seed);
        p
    }

    /// Re-seeds the platform RNG and redraws the undrained future of an
    /// installed fault campaign from `seed`, keeping all other state (see
    /// [`FppaPlatform::fork`]).
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        let now = self.clock.now().0;
        if let Some(c) = self.campaign.as_mut() {
            c.reseed(seed, now);
        }
    }

    /// The replica seed last applied by [`FppaPlatform::reseed`] /
    /// [`FppaPlatform::fork`] (0 for a freshly built platform).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the platform-owned seeded RNG. The built-in
    /// simulation path never draws from it; custom components that want
    /// per-replica randomness should draw here so forked replicas diverge
    /// and snapshots capture their stream position.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Retunes I/O channel `i`'s line rate in place (warm-fork hook: grid
    /// points forked from one warmed platform differ only in offered load
    /// from the fork cycle onward).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_io_rate(&mut self, i: usize, rate: nw_types::BitsPerSec) {
        self.ios[i].set_rate(rate);
    }

    /// Installs a trace sink: from now on the platform reports packet
    /// injections/deliveries, link transfers, handler dispatch/retire,
    /// deadline misses and fast-forward hops to it, and the NoC starts its
    /// heatmap accounting. Tracing is pure observation — a traced run
    /// produces bit-identical reports to an untraced one.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.noc.enable_obs();
        for pe in &mut self.pes {
            pe.set_retire_log(true);
        }
        self.obs_sink = Some(sink);
    }

    /// Removes and returns the installed trace sink (retire logging stops;
    /// NoC heatmap counters keep accumulating once enabled).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        for pe in &mut self.pes {
            pe.set_retire_log(false);
        }
        self.obs_sink.take()
    }

    /// The NoC contention heatmap up to the current cycle (`None` unless a
    /// trace sink was installed at some point).
    pub fn noc_heatmap(&self) -> Option<NocHeatmap> {
        self.noc.heatmap(self.clock.now())
    }

    /// Installs a host-side phase profiler; [`FppaPlatform::run`] arms it,
    /// laps it at every phase boundary, and pauses it on return.
    pub fn set_host_profiler(&mut self, profiler: HostProfiler) {
        self.profiler = Some(profiler);
    }

    /// Removes and returns the host profiler (read it with
    /// [`HostProfiler::report`]).
    pub fn take_host_profiler(&mut self) -> Option<HostProfiler> {
        self.profiler.take()
    }

    /// Closes the host-profiler phase that just finished, if profiling.
    #[inline]
    fn prof_lap(&mut self, phase: HostPhase) {
        if let Some(p) = self.profiler.as_mut() {
            p.lap(phase);
        }
    }

    /// The scheduler in use.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Switches scheduler. Both modes simulate identically (the active-set
    /// scheduler is verified bit-identical against the dense reference), so
    /// switching is safe at any point; pending active-set bookkeeping is
    /// reset conservatively.
    pub fn set_scheduler_mode(&mut self, mode: SchedulerMode) {
        self.scheduler = mode;
        for a in &mut self.pe_active {
            *a = true;
        }
    }

    /// The configuration the platform was built from.
    pub fn config(&self) -> &FppaConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// The NoC node hosting PE `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe_node(&self, i: usize) -> NodeId {
        self.pe_nodes[i]
    }

    /// The NoC node hosting memory `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn memory_node(&self, i: usize) -> NodeId {
        self.mem_nodes[i]
    }

    /// The NoC node hosting eFPGA fabric `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fabric_node(&self, i: usize) -> NodeId {
        self.fabric_nodes[i]
    }

    /// The NoC node hosting hardwired IP `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hwip_node(&self, i: usize) -> NodeId {
        self.hwip_nodes[i]
    }

    /// The NoC node hosting I/O channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn io_node(&self, i: usize) -> NodeId {
        self.io_nodes[i]
    }

    /// The role at an endpoint.
    pub fn role(&self, node: NodeId) -> Option<NodeRole> {
        self.roles.get(node.0).copied()
    }

    /// Direct access to a PE (inspection, custom program spawning).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe(&self, i: usize) -> &Pe {
        &self.pes[i]
    }

    /// Mutable access to a PE.
    ///
    /// The PE is woken for active-set scheduling (the caller may spawn work
    /// on it) and its busy/idle accounting is settled to the current cycle
    /// before the reference is handed out, so external mutation composes
    /// with lazily accounted skipped cycles.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe_mut(&mut self, i: usize) -> &mut Pe {
        let now = self.clock.now();
        self.pes[i].settle_accounting(now);
        self.pe_active[i] = true;
        // The caller may spawn programs the runtime never saw; drop the
        // PE's thread → object attributions so a manual program's service
        // calls cannot be charged to a stale handler's latency histogram.
        if let Some(rt) = self.runtime.as_mut() {
            rt.clear_thread_objects(i);
        }
        &mut self.pes[i]
    }

    /// Direct access to an eFPGA fabric (configuration).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fabric_mut(&mut self, i: usize) -> &mut Efpga {
        &mut self.fabrics[i]
    }

    /// Direct access to an I/O channel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn io(&self, i: usize) -> &IoChannel {
        &self.ios[i]
    }

    /// Payload buffers acquired from the platform's [`PayloadPool`] but not
    /// yet recycled (`taken - returned`). On a quiesced platform with a
    /// finite workload this must be zero: every synthesized or ingress
    /// payload became a packet that was eventually consumed and its buffer
    /// returned. The scheduler differential suite pins that conservation
    /// law; a persistent nonzero residue under quiescence is a buffer leak.
    pub fn payload_outstanding(&self) -> i64 {
        self.pool.outstanding()
    }

    /// NoC hop-distance matrix over all endpoints (input for the MultiFlex
    /// mappers).
    ///
    /// The matrix is O(n²) `hops` walks to build, and mapper-heavy loops
    /// (DSE sweeps) ask for it repeatedly, so it is computed once and
    /// cached. Permanently failing a link ([`FppaPlatform::fail_noc_link`]
    /// or a campaign fault) invalidates the cache, so the next call
    /// recomputes against the degraded routing tables; endpoint pairs
    /// disconnected by dead links read `f64::INFINITY`.
    pub fn hop_matrix(&self) -> Vec<Vec<f64>> {
        self.hop_cache
            .get_or_init(|| {
                let n = self.roles.len();
                (0..n)
                    .map(|a| {
                        (0..n)
                            .map(|b| {
                                self.noc
                                    .topology()
                                    .try_hops(a, b)
                                    .map_or(f64::INFINITY, |h| h as f64)
                            })
                            .collect()
                    })
                    .collect()
            })
            .clone()
    }

    /// Total die area of the declared components (PE cores + memory macros +
    /// fabrics + hardwired IP) at the configured node.
    pub fn area(&self) -> AreaMm2 {
        let pe_area: AreaMm2 = self.cfg.pes.iter().map(|p| p.class.core_area()).sum();
        let mem_area: AreaMm2 = self
            .cfg
            .memories
            .iter()
            .map(|m| MemorySpec::at_node(m.technology, self.cfg.tech).macro_area(m.mbits))
            .sum();
        let fabric_area: AreaMm2 = self
            .fabrics
            .iter()
            .filter_map(|f| f.kernel().map(|k| k.area))
            .sum();
        let hwip_area: AreaMm2 = self.hwips.iter().map(|h| h.area()).sum();
        pe_area + mem_area + fabric_area + hwip_area
    }

    /// Runs the platform for `cycles` cycles and reports.
    ///
    /// Under [`SchedulerMode::ActiveSet`] fully idle cycle spans are
    /// fast-forwarded: when nothing is due (no busy PE, no queued or
    /// in-flight NoC traffic, no busy service node, no pending dispatch)
    /// the clock jumps straight to the next timed event instead of
    /// stepping cycle by cycle. I/O pacing keeps its per-cycle credit
    /// arithmetic, so results stay bit-identical to the dense scheduler.
    pub fn run(&mut self, cycles: u64) -> PlatformReport {
        let start = self.clock.now();
        if let Some(p) = self.profiler.as_mut() {
            p.arm();
        }
        match self.scheduler {
            SchedulerMode::Dense => {
                for _ in 0..cycles {
                    self.step_dense();
                }
            }
            SchedulerMode::ActiveSet => {
                let end = Cycles(start.0 + cycles);
                while self.clock.now() < end {
                    // The quiet-span probe itself has no phase: its cost
                    // folds into the lap of whichever phase ends next
                    // (FastForward on a hop, IoPacing on a normal step).
                    match self.quiet_span() {
                        Some(pe_span) => {
                            let before = self.clock.now();
                            self.span_hop(end, pe_span);
                            if let Some(s) = self.obs_sink.as_deref_mut() {
                                s.emit(TraceEvent::FastForward {
                                    cycle: before.0,
                                    span: self.clock.now().0 - before.0,
                                });
                            }
                            self.prof_lap(HostPhase::FastForward);
                        }
                        None => self.step_active(),
                    }
                }
            }
        }
        let report = self.report(self.clock.now().saturating_sub(start));
        self.prof_lap(HostPhase::Settle);
        if let Some(p) = self.profiler.as_mut() {
            p.pause();
        }
        report
    }

    /// Advances the platform by one cycle under the configured scheduler.
    pub fn step(&mut self) {
        match self.scheduler {
            SchedulerMode::Dense => self.step_dense(),
            SchedulerMode::ActiveSet => self.step_active(),
        }
    }

    /// The minimal fabric description a [`FaultCampaign`] needs to aim
    /// faults at valid targets on this platform.
    pub fn fault_shape(&self) -> FabricShape {
        let topo = self.noc.topology();
        FabricShape {
            n_pes: self.pes.len(),
            router_ports: (0..topo.n_routers())
                .map(|r| topo.links_of(r).len())
                .collect(),
            n_endpoints: topo.n_endpoints(),
        }
    }

    /// Installs a fault campaign: from the next stepped cycle on, due
    /// events are drained at the top of every cycle (under both scheduler
    /// modes, at identical cycles) and applied through the NoC and PE fault
    /// hooks. Campaigns pair naturally with
    /// [`FppaPlatform::set_retry_policy`] so lost requests recover instead
    /// of blocking their thread forever.
    pub fn install_fault_campaign(&mut self, campaign: FaultCampaign) {
        self.campaign = Some(campaign);
    }

    /// The installed fault campaign, if any.
    pub fn fault_campaign(&self) -> Option<&FaultCampaign> {
        self.campaign.as_ref()
    }

    /// Enables the deterministic retry layer: every synchronous call gets a
    /// deadline, a timed-out call is re-issued with a bumped tag token
    /// (stale replies are detected and dropped), and a call that exhausts
    /// [`RetryPolicy::max_attempts`] releases its blocked thread.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.resilience = Some(ResilienceState::new(policy));
    }

    /// Synchronous calls currently tracked by the retry layer.
    pub fn pending_retries(&self) -> usize {
        self.resilience
            .as_ref()
            .map_or(0, ResilienceState::pending_len)
    }

    /// Fault-injection and recovery counters: platform-side events merged
    /// with the NoC's drop/corruption bookkeeping. All zero when faults
    /// were never enabled.
    pub fn resilience_stats(&self) -> ResilienceStats {
        let mut s = self.rstats.clone();
        s.packets_dropped = self.noc.dropped_packets();
        s.flits_dropped = self.noc.dropped_flits();
        s.packets_corrupted = self.noc.corrupted_packets();
        s
    }

    /// Permanently fails output `port` of `router`: routes are recomputed
    /// around the dead link (BFS over the surviving fabric), stranded
    /// packets are redirected or deterministically dropped, and the cached
    /// hop matrix is invalidated. Returns `false` when the link was already
    /// down. This is the degraded-mode hook the fault phase uses for
    /// permanent `LinkDown` events; tests and experiments may call it
    /// directly.
    pub fn fail_noc_link(&mut self, router: usize, port: usize) -> bool {
        let now = self.clock.now();
        if !self.noc.fail_link(router, port, now) {
            return false;
        }
        self.rstats.links_failed += 1;
        self.rstats.reroutes += 1;
        self.hop_cache.take();
        if let Some(s) = self.obs_sink.as_deref_mut() {
            s.emit(TraceEvent::Reroute {
                cycle: now.0,
                router,
                port,
            });
        }
        true
    }

    /// Crashes PE `pe` (fault hook): threads die, owned payload buffers are
    /// recycled into the pool, latency probes and retry entries of the PE
    /// are cancelled. Idempotent while crashed.
    fn crash_pe(&mut self, pe: usize, now: Cycles) {
        if pe >= self.pes.len() || self.pes[pe].is_crashed() {
            return;
        }
        for b in self.pes[pe].crash(now) {
            // Storage-less program payloads (`Op::call` stubs) are only
            // converted to pool buffers by `pad_zeroed` at send time; a
            // crashed PE's unexecuted ones were never taken, so counting
            // them as returns would unbalance the ledger.
            if b.capacity() > 0 {
                self.pool.put(b);
            }
        }
        // One settling tick; the PE reads dormant from the next cycle on.
        self.pe_active[pe] = true;
        for slot in &mut self.call_issue[pe] {
            *slot = None;
        }
        if let Some(rt) = self.runtime.as_mut() {
            rt.clear_thread_objects(pe);
        }
        if let Some(rs) = self.resilience.as_mut() {
            for b in rs.abandon_pe(pe) {
                self.pool.put(b);
            }
        }
        self.rstats.pe_crashes += 1;
    }

    /// Drains and applies every campaign event due at `now`, then recycles
    /// any payload buffers the NoC dropped (injected drops now, or
    /// disconnection drops during earlier ticks). Runs at the top of both
    /// scheduler steps, so fault application lands on identical cycles.
    fn apply_faults(&mut self, now: Cycles) {
        let Some(mut campaign) = self.campaign.take() else {
            return;
        };
        for ev in campaign.take_due(now.0) {
            self.rstats.faults_injected += 1;
            let (kind, target, arg) = match ev.kind {
                FaultKind::LinkDown {
                    router,
                    port,
                    until: Some(until),
                } => {
                    if router < self.noc.topology().n_routers()
                        && port < self.noc.topology().links_of(router).len()
                    {
                        self.noc.stall_port(router, port, until);
                    }
                    (0, router, port as u64)
                }
                FaultKind::LinkDown {
                    router,
                    port,
                    until: None,
                } => {
                    if router < self.noc.topology().n_routers()
                        && port < self.noc.topology().links_of(router).len()
                    {
                        self.fail_noc_link(router, port);
                    }
                    (1, router, port as u64)
                }
                FaultKind::RouterStall { router, until } => {
                    if router < self.noc.topology().n_routers() {
                        self.noc.stall_router(router, until);
                    }
                    (2, router, until)
                }
                FaultKind::DropNext { router } => {
                    if router < self.noc.topology().n_routers() {
                        self.noc.drop_next(router, now);
                    }
                    (3, router, 0)
                }
                FaultKind::CorruptNext { node } => {
                    if node < self.roles.len() {
                        self.noc.corrupt_next(node);
                    }
                    (4, node, 0)
                }
                FaultKind::PeCrash { pe } => {
                    self.crash_pe(pe, now);
                    (5, pe, 0)
                }
                FaultKind::PeRestart { pe } => {
                    if pe < self.pes.len() && self.pes[pe].is_crashed() {
                        self.pes[pe].restart(now);
                        self.pe_active[pe] = true;
                        self.rstats.pe_restarts += 1;
                    }
                    (6, pe, 0)
                }
            };
            if let Some(s) = self.obs_sink.as_deref_mut() {
                s.emit(TraceEvent::FaultInjected {
                    cycle: now.0,
                    kind,
                    target,
                    arg,
                });
            }
        }
        self.campaign = Some(campaign);
        if self.noc.has_dropped_buffers() {
            for b in self.noc.take_dropped_buffers() {
                self.pool.put(b);
            }
        }
    }

    /// Fires due retry deadlines: re-issue with a bumped token and doubled
    /// window, or give up after the attempt budget and release the blocked
    /// thread. Deadlines are plain cycle numbers, so both schedulers fire
    /// them on identical cycles.
    fn check_retries(&mut self, now: Cycles) {
        let Some(mut rs) = self.resilience.take() else {
            return;
        };
        if rs.earliest_deadline().is_some_and(|d| d <= now.0) {
            let policy = rs.policy;
            for (p, tid) in rs.due_keys(now.0) {
                let give_up = {
                    let Some(entry) = rs.get_mut(p, tid) else {
                        continue;
                    };
                    u32::from(entry.attempt) + 1 >= u32::from(policy.max_attempts.max(1))
                };
                if give_up {
                    if let Some(data) = rs.abandon(p, tid) {
                        self.pool.put(data);
                    }
                    self.call_issue[p][tid] = None;
                    self.rstats.retry_give_ups += 1;
                    let t = nw_types::ThreadId(tid);
                    if self.pes[p].is_awaiting(t) {
                        self.pe_active[p] = true;
                        self.pes[p].complete(t);
                    }
                } else {
                    rs.bump(p, tid, now.0);
                    let entry = rs.get_mut(p, tid).expect("entry was just bumped");
                    let mut fresh = self.pool.take();
                    fresh.extend_from_slice(&entry.data);
                    let send = std::mem::replace(&mut entry.data, fresh);
                    let tag = RequestTag {
                        pe: PeId(p),
                        tid: nw_types::ThreadId(tid),
                        token: entry.token,
                        reply_bytes: entry.reply_bytes,
                    }
                    .encode();
                    let (dst, attempt) = (entry.dst, entry.attempt);
                    self.outbox.push_back(Outgoing {
                        src: self.pe_nodes[p],
                        dst,
                        data: send,
                        tag,
                        on_accept: None,
                    });
                    self.rstats.retries += 1;
                    if let Some(s) = self.obs_sink.as_deref_mut() {
                        s.emit(TraceEvent::RetryIssued {
                            cycle: now.0,
                            pe: p,
                            thread: tid,
                            attempt: u32::from(attempt),
                        });
                    }
                }
            }
        }
        self.resilience = Some(rs);
    }

    /// The dense reference scheduler: every component ticks every cycle.
    fn step_dense(&mut self) {
        let now = self.clock.now();

        // 0. Fault injection and retry deadlines (no-ops when disabled).
        if self.campaign.is_some() {
            self.apply_faults(now);
        }
        if self.resilience.is_some() {
            self.check_retries(now);
        }

        // 1. I/O pacing and ingress injection.
        for i in 0..self.ios.len() {
            self.ios[i].tick(now);
        }
        self.io_ingress(now);
        self.prof_lap(HostPhase::IoPacing);

        // 2. The interconnect.
        self.noc.tick_traced(now, self.obs_sink.as_deref_mut());
        self.prof_lap(HostPhase::NocTick);

        // 3. Route arrivals.
        self.route_arrivals(now);
        self.prof_lap(HostPhase::RouteArrivals);

        // 4. Service nodes: memories, fabrics, hardwired IP.
        self.tick_services(now, false);
        self.prof_lap(HostPhase::Services);

        // 5. DSOC drives and dispatch.
        self.runtime_dispatch(now);
        self.prof_lap(HostPhase::Dispatch);

        // 6. PEs execute; their requests become packets.
        for i in 0..self.pes.len() {
            self.pes[i].tick(now);
        }
        self.drain_retirements(now);
        self.collect_pe_requests(now);
        self.prof_lap(HostPhase::PeStep);

        // 7. Flush the injection retry queue.
        self.flush_outbox(now);
        self.prof_lap(HostPhase::Outbox);

        self.clock.advance();
    }

    /// The active-set scheduler: the same phase order as the dense step,
    /// but each phase only visits components that can actually do work.
    /// Skipped components would have ticked as no-ops (or, for dormant
    /// PEs, pure busy/idle accounting that is settled in bulk later), so
    /// the simulation is bit-identical to [`FppaPlatform::step_dense`].
    fn step_active(&mut self) {
        let now = self.clock.now();

        // 0. Fault injection and retry deadlines (no-ops when disabled) —
        //    same phase position as the dense step, so fault application
        //    and retry firing land on identical cycles.
        if self.campaign.is_some() {
            self.apply_faults(now);
        }
        if self.resilience.is_some() {
            self.check_retries(now);
        }

        // 1. I/O pacing always ticks: the line-rate credit accumulator is
        //    per-cycle f64 arithmetic that must replay exactly.
        for i in 0..self.ios.len() {
            self.ios[i].tick(now);
        }
        self.io_ingress(now);
        self.prof_lap(HostPhase::IoPacing);

        // 2. The interconnect, when an arrival, router wake or ready NI
        //    head is actually due this cycle. A loaded-but-stalled fabric
        //    (every queued packet waiting out multi-cycle link occupancy)
        //    is skipped entirely — the tick would be a no-op.
        if self.noc.due_now(now) {
            self.noc.tick_traced(now, self.obs_sink.as_deref_mut());
        }
        self.prof_lap(HostPhase::NocTick);

        // 3. Route arrivals, when a delivered packet awaits ejection.
        if self.noc.eject_pending() > 0 {
            self.route_arrivals(now);
        }
        self.prof_lap(HostPhase::RouteArrivals);

        // 4. Service nodes with work (busy pipelines or parked retries).
        self.tick_services(now, true);
        self.prof_lap(HostPhase::Services);

        // 5. DSOC drives and dispatch.
        self.runtime_dispatch(now);
        self.prof_lap(HostPhase::Dispatch);

        // 6. Active PEs execute; dormant ones keep sleeping and settle
        //    their accounting in bulk when they wake or at report time.
        for p in 0..self.pes.len() {
            if self.pe_active[p] {
                self.pes[p].tick(now);
                self.pe_active[p] = self.pes[p].is_live();
            }
        }
        self.drain_retirements(now);
        self.collect_pe_requests(now);
        self.prof_lap(HostPhase::PeStep);

        // 7. Flush the injection retry queue.
        if !self.outbox.is_empty() {
            self.flush_outbox(now);
        }
        self.prof_lap(HostPhase::Outbox);

        self.clock.advance();
    }

    /// Reports handler retirements to the trace sink. Retire logs are only
    /// recorded while a sink is installed, so this is a no-op otherwise; a
    /// PE skipped by the active-set scheduler cannot have retired anything
    /// since its last tick, so visiting every PE is exact under both
    /// schedulers.
    fn drain_retirements(&mut self, now: Cycles) {
        if self.obs_sink.is_none() {
            return;
        }
        for p in 0..self.pes.len() {
            for tid in self.pes[p].take_retired() {
                if let Some(s) = self.obs_sink.as_deref_mut() {
                    s.emit(TraceEvent::HandlerEnd {
                        cycle: now.0,
                        pe: p,
                        thread: tid.0,
                    });
                }
            }
        }
    }

    /// Whether the upcoming span of cycles is provably skippable, and for
    /// how long with respect to the PEs. `None`: this cycle must be stepped
    /// normally. `Some(k)`: nothing except I/O pacing credit and in-flight
    /// PE compute bursts evolves for at least the next `k` cycles (and any
    /// timed NoC/memory event is respected separately via
    /// [`Self::quiet_target`]) — no retirement, dispatch, injection or
    /// arrival can occur, so the span can be bulk-advanced.
    ///
    /// With every PE dormant the PE bound is unlimited (`u64::MAX`, the
    /// pure-idle fast-forward of the original active-set scheduler); with
    /// active PEs the bound is the shortest in-flight compute burst, and
    /// any active PE doing something other than a compute burst forces a
    /// normal step.
    fn quiet_span(&self) -> Option<u64> {
        let now = self.clock.now();
        if !self.outbox.is_empty() {
            return None;
        }
        // A fault event or retry deadline due now must be applied in a
        // normally stepped cycle; future ones bound the hop via
        // [`Self::quiet_target`].
        if self
            .campaign
            .as_ref()
            .and_then(FaultCampaign::next_cycle)
            .is_some_and(|t| t <= now.0)
        {
            return None;
        }
        if self
            .resilience
            .as_ref()
            .and_then(ResilienceState::earliest_deadline)
            .is_some_and(|d| d <= now.0)
        {
            return None;
        }
        if self.noc.eject_pending() > 0 || self.noc.next_event_cycle(now).is_some_and(|t| t <= now)
        {
            return None;
        }
        if let Some(rt) = self.runtime.as_ref() {
            if rt.has_pacing() || rt.has_dispatch_work() {
                return None;
            }
            for (i, io) in self.ios.iter().enumerate() {
                if rt.io_has_bindings(i) && (io.rx_backlog() > 0 || io.rx_due_next_tick()) {
                    return None;
                }
            }
        }
        let mems_quiet = self
            .mems
            .iter()
            .zip(&self.mem_parked)
            .all(|(m, parked)| parked.is_empty() && m.is_idle());
        let fabrics_quiet = self
            .fabrics
            .iter()
            .zip(&self.fabric_parked)
            .all(|(f, parked)| parked.is_empty() && f.is_idle());
        let hwips_quiet = self
            .hwips
            .iter()
            .zip(&self.hwip_parked)
            .all(|(h, parked)| parked.is_empty() && h.is_idle());
        if !(mems_quiet && fabrics_quiet && hwips_quiet) {
            return None;
        }
        // PE bound: dormant PEs are unconstrained (their accounting settles
        // lazily); every active PE must be mid compute burst.
        let mut span = u64::MAX;
        for (i, pe) in self.pes.iter().enumerate() {
            if !self.pe_active[i] {
                continue;
            }
            match pe.quiet_span(now) {
                Some(k) => span = span.min(k),
                None => return None,
            }
        }
        Some(span)
    }

    /// Advances over a quiet span. Without I/O channels the clock jumps to
    /// the span target in one hop; with I/O channels the pacing credit must
    /// accumulate cycle by cycle, so the hop ticks only the pacers in a
    /// tight loop, breaking out the moment a bound channel holds (or is
    /// about to produce) ingress traffic. Active PEs then bulk-apply the
    /// hopped cycles to their compute bursts — counter arithmetic identical
    /// to per-cycle ticking, so the dense scheduler sees the same state.
    fn span_hop(&mut self, end: Cycles, pe_span: u64) {
        let now = self.clock.now();
        let mut target = self.quiet_target(end);
        if pe_span != u64::MAX {
            target = target.min(Cycles(now.0 + pe_span));
        }
        let target = target.max(Cycles(now.0 + 1));
        if self.ios.is_empty() {
            self.clock.advance_by(Cycles(target.0 - now.0));
        } else {
            // Bindings cannot change mid-hop, so resolve which channels'
            // ingress can end the span once, outside the per-cycle loop.
            // (Unbound channels pace and drop; their state never wakes
            // anything, exactly as in a dense step.)
            let mut bound: Option<Vec<usize>> = None;
            let mut t = now.0;
            loop {
                for io in self.ios.iter_mut() {
                    io.tick(Cycles(t));
                }
                t += 1;
                if t >= target.0 {
                    break;
                }
                let bound = bound.get_or_insert_with(|| match self.runtime.as_ref() {
                    Some(rt) => (0..self.ios.len())
                        .filter(|&i| rt.io_has_bindings(i))
                        .collect(),
                    None => Vec::new(),
                });
                let io_traffic = bound.iter().any(|&i| {
                    let io = &self.ios[i];
                    io.rx_backlog() > 0 || io.rx_due_next_tick()
                });
                if io_traffic {
                    break;
                }
            }
            self.clock.advance_by(Cycles(t - now.0));
        }
        if pe_span != u64::MAX {
            let hopped = self.clock.now().0 - now.0;
            for i in 0..self.pes.len() {
                if self.pe_active[i] {
                    self.pes[i].advance_quiet(hopped);
                }
            }
        }
    }

    /// The earliest cycle at which a *timed* NoC event is due (arrivals,
    /// port frees), clamped to `end`. Only meaningful right after
    /// [`Self::quiet_span`] answered `Some`: that check has already ruled
    /// out every other event source — "due now or every cycle" ones
    /// (issuing PEs, outbox, dispatch, pacing drives, parked services)
    /// and timed ones alike (a memory, fabric or IP block with anything
    /// in flight fails its `is_idle` test there), so the NoC holds the
    /// only pending timed events.
    fn quiet_target(&self, end: Cycles) -> Cycles {
        let now = self.clock.now();
        let mut target = end;
        if let Some(c) = self.noc.next_event_cycle(now) {
            target = target.min(c.max(now));
        }
        // Pending fault events and retry deadlines are timed events too: a
        // quiet span must never skip over one.
        if let Some(c) = self.campaign.as_ref().and_then(FaultCampaign::next_cycle) {
            target = target.min(Cycles(c).max(now));
        }
        if let Some(d) = self
            .resilience
            .as_ref()
            .and_then(ResilienceState::earliest_deadline)
        {
            target = target.min(Cycles(d).max(now));
        }
        target
    }

    /// The earliest cycle `>=` now at which any platform component has work
    /// due, or `None` when the platform is completely drained. Spans before
    /// the returned cycle are safe to skip (given idle I/O pacing): the
    /// dense scheduler would tick through them without changing state.
    pub fn next_event_cycle(&self) -> Option<Cycles> {
        let now = self.clock.now();
        let mut next: Option<Cycles> = None;
        let mut fold = |c: Option<Cycles>| {
            next = match (next, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        if self.pe_active.iter().any(|&a| a)
            || !self.outbox.is_empty()
            || self.noc.eject_pending() > 0
            || self
                .runtime
                .as_ref()
                .is_some_and(|rt| rt.has_pacing() || rt.has_dispatch_work())
        {
            fold(Some(now));
        }
        // Paced I/O is per-cycle state; any non-drained channel means the
        // next cycle is an event.
        if self
            .ios
            .iter()
            .any(|io| io.config().bits_per_cycle() > 0.0 || io.rx_backlog() > 0)
        {
            fold(Some(Cycles(now.0 + 1)));
        }
        fold(self.noc.next_event_cycle(now));
        fold(
            self.campaign
                .as_ref()
                .and_then(FaultCampaign::next_cycle)
                .map(|t| Cycles(t).max(now)),
        );
        fold(
            self.resilience
                .as_ref()
                .and_then(ResilienceState::earliest_deadline)
                .map(|d| Cycles(d).max(now)),
        );
        for (m, parked) in self.mems.iter().zip(&self.mem_parked) {
            if !parked.is_empty() {
                fold(Some(now));
            } else {
                fold(m.next_event_cycle(now));
            }
        }
        for (f, parked) in self.fabrics.iter().zip(&self.fabric_parked) {
            if !parked.is_empty() || !f.is_idle() {
                fold(Some(now));
            }
        }
        for (h, parked) in self.hwips.iter().zip(&self.hwip_parked) {
            if !parked.is_empty() || !h.is_idle() {
                fold(Some(now));
            }
        }
        next
    }

    /// Settles all lazily accounted busy/idle statistics up to the current
    /// cycle. Called automatically by [`FppaPlatform::report`]; call it
    /// directly before reading [`Pe::stats`] on a manually stepped platform
    /// running the active-set scheduler.
    pub fn settle(&mut self) {
        let now = self.clock.now();
        for pe in &mut self.pes {
            pe.settle_accounting(now);
        }
        // Buffers dropped by the NoC on the final cycle (injected drops,
        // disconnections) still belong to the pool.
        if self.noc.has_dropped_buffers() {
            for b in self.noc.take_dropped_buffers() {
                self.pool.put(b);
            }
        }
    }

    /// Drains line-rate ingress into DSOC invocations (runtime present) or
    /// discards descriptors (no app installed).
    fn io_ingress(&mut self, now: Cycles) {
        let Some(rt) = self.runtime.as_mut() else {
            return;
        };
        for (i, io) in self.ios.iter_mut().enumerate() {
            if !rt.io_has_bindings(i) {
                continue;
            }
            let io_node = self.io_nodes[i];
            // Only drain what the NI can take this cycle; the rest waits in
            // the RX FIFO (and overflows are counted as line drops).
            while self.noc.ni_free(io_node) > 0 {
                let Some(_seq) = io.take_rx() else { break };
                let (dst, data) = rt.ingress_invocation(i, &mut self.pool);
                let bytes = data.len();
                self.noc
                    .try_inject(io_node, dst, data, 0, now)
                    .expect("ni_free was checked");
                if let Some(s) = self.obs_sink.as_deref_mut() {
                    s.emit(TraceEvent::FlitInject {
                        cycle: now.0,
                        src: io_node.0,
                        dst: dst.0,
                        bytes,
                    });
                }
            }
        }
    }

    fn route_arrivals(&mut self, now: Cycles) {
        for node in 0..self.roles.len() {
            while let Some(mut pkt) = self.noc.eject(NodeId(node)) {
                match self.roles[node] {
                    NodeRole::Pe(p) => {
                        if is_reply(pkt.tag) {
                            let t = RequestTag::decode(pkt.tag);
                            match self
                                .resilience
                                .as_mut()
                                .map(|rs| rs.close(p, t.tid.0, t.token))
                            {
                                None => {
                                    // Legacy path (retry layer off).
                                    self.record_reply_latency(p, t.tid, now);
                                    // Data-driven wake: the completion makes
                                    // a blocked thread runnable again.
                                    self.pe_active[p] = true;
                                    self.pes[p].complete(t.tid);
                                }
                                Some(CloseOutcome::Live(stored)) => {
                                    self.pool.put(stored);
                                    self.record_reply_latency(p, t.tid, now);
                                    self.pe_active[p] = true;
                                    self.pes[p].complete(t.tid);
                                }
                                Some(CloseOutcome::Stale) => {
                                    // An earlier attempt's reply arrived
                                    // after its timeout: a newer attempt is
                                    // in flight, so this one is a duplicate.
                                    self.rstats.duplicate_replies_dropped += 1;
                                }
                                Some(CloseOutcome::Unknown) => {
                                    // No tracked call: the thread either
                                    // gave up already or its PE crashed.
                                    if self.pes[p].is_awaiting(t.tid) {
                                        self.record_reply_latency(p, t.tid, now);
                                        self.pe_active[p] = true;
                                        self.pes[p].complete(t.tid);
                                    } else {
                                        self.rstats.duplicate_replies_dropped += 1;
                                    }
                                }
                            }
                        } else if let Some(rt) = self.runtime.as_mut() {
                            rt.enqueue_invocation(p, &pkt);
                        }
                    }
                    NodeRole::Memory(m) => {
                        let t = RequestTag::decode(pkt.tag);
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        let req = MemRequest {
                            id,
                            kind: ReqKind::Read,
                            addr: id.wrapping_mul(MemoryController::INTERLEAVE),
                            bytes: t.reply_bytes.max(1),
                        };
                        match self.mems[m].submit(req, now) {
                            Ok(()) => {
                                self.mem_inflight[m].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.mem_parked[m].push_back((req, pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::Fabric(f) => {
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        match self.fabrics[f].try_submit(id, now) {
                            Ok(()) => {
                                self.fabric_inflight[f].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.fabric_parked[f].push_back((pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::HwIp(h) => {
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        match self.hwips[h].try_submit(id, now) {
                            Ok(()) => {
                                self.hwip_inflight[h].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.hwip_parked[h].push_back((pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::Io(i) => {
                        self.ios[i].transmit(pkt.wire_bytes());
                    }
                }
                // Every arm above consumes the packet; its payload buffer
                // goes back to the arena for the next producer.
                self.pool.put(std::mem::take(&mut pkt.data));
            }
        }
    }

    /// Ticks the service nodes. With `active_only`, nodes that are provably
    /// quiescent (idle pipeline, nothing parked) are skipped — their tick
    /// would be a no-op, so both settings simulate identically.
    fn tick_services(&mut self, now: Cycles, active_only: bool) {
        // Memories: retry parked, tick, answer completions.
        for m in 0..self.mems.len() {
            if active_only && self.mem_parked[m].is_empty() && self.mems[m].is_idle() {
                continue;
            }
            while let Some(&(req, tag, src)) = self.mem_parked[m].front() {
                if self.mems[m].submit(req, now).is_ok() {
                    self.mem_inflight[m].insert(req.id, (tag, src));
                    self.mem_parked[m].pop_front();
                } else {
                    break;
                }
            }
            self.mems[m].tick(now);
            while let Some(resp) = self.mems[m].take_response() {
                if let Some((tag, reply_to)) = self.mem_inflight[m].remove(&resp.id) {
                    self.push_service_reply(self.mem_nodes[m], reply_to, tag);
                }
            }
        }
        for f in 0..self.fabrics.len() {
            if active_only && self.fabric_parked[f].is_empty() && self.fabrics[f].is_idle() {
                continue;
            }
            while let Some(&(tag, src)) = self.fabric_parked[f].front() {
                let id = self.next_service_id;
                if self.fabrics[f].try_submit(id, now).is_ok() {
                    self.next_service_id += 1;
                    self.fabric_inflight[f].insert(id, (tag, src));
                    self.fabric_parked[f].pop_front();
                } else {
                    break;
                }
            }
            self.fabrics[f].tick(now);
            while let Some(id) = self.fabrics[f].take_done() {
                if let Some((tag, reply_to)) = self.fabric_inflight[f].remove(&id) {
                    self.push_service_reply(self.fabric_nodes[f], reply_to, tag);
                }
            }
        }
        for h in 0..self.hwips.len() {
            if active_only && self.hwip_parked[h].is_empty() && self.hwips[h].is_idle() {
                continue;
            }
            while let Some(&(tag, src)) = self.hwip_parked[h].front() {
                let id = self.next_service_id;
                if self.hwips[h].try_submit(id, now).is_ok() {
                    self.next_service_id += 1;
                    self.hwip_inflight[h].insert(id, (tag, src));
                    self.hwip_parked[h].pop_front();
                } else {
                    break;
                }
            }
            self.hwips[h].tick(now);
            while let Some(id) = self.hwips[h].take_done() {
                if let Some((tag, reply_to)) = self.hwip_inflight[h].remove(&id) {
                    self.push_service_reply(self.hwip_nodes[h], reply_to, tag);
                }
            }
        }
    }

    /// Closes the latency probe of thread `(p, tid)` at reply delivery:
    /// the elapsed cycles since the call issued land in the attributed
    /// object's histogram, and the object's deadline budget (if any) is
    /// checked. Runs identically under both schedulers — deliveries happen
    /// in normally stepped cycles, never inside a fast-forwarded span.
    fn record_reply_latency(&mut self, p: usize, tid: nw_types::ThreadId, now: Cycles) {
        let Some((issued, obj)) = self
            .call_issue
            .get_mut(p)
            .and_then(|slots| slots.get_mut(tid.0))
            .and_then(Option::take)
        else {
            return;
        };
        let latency = now.saturating_sub(issued);
        if let Some(h) = self.object_latency.get_mut(obj.0) {
            h.record(latency);
            if let Some(budget) = self.latency_deadlines[obj.0] {
                if latency.0 > budget {
                    self.deadline_misses[obj.0] += 1;
                    if let Some(s) = self.obs_sink.as_deref_mut() {
                        s.emit(TraceEvent::DeadlineMiss {
                            cycle: now.0,
                            object: obj.0,
                            latency: latency.0,
                            budget,
                        });
                    }
                }
            }
        }
    }

    fn push_service_reply(&mut self, src: NodeId, dst: NodeId, tag: u64) {
        let t = RequestTag::decode(tag);
        self.outbox.push_back(Outgoing {
            src,
            dst,
            data: self.pool.take_zeroed(t.reply_bytes as usize),
            tag: t.encode_reply(),
            on_accept: None,
        });
    }

    fn runtime_dispatch(&mut self, now: Cycles) {
        let Some(mut rt) = self.runtime.take() else {
            return;
        };
        rt.drive(now);
        rt.dispatch(
            &mut self.pes,
            now,
            &mut self.pe_active,
            &mut self.pool,
            self.obs_sink.as_deref_mut(),
        );
        self.runtime = Some(rt);
    }

    /// The application object a synchronous call from thread `(p, tid)` to
    /// `dst` is attributed to for latency telemetry:
    ///
    /// * a call to a **service node** (memory, fabric, hardwired IP) is a
    ///   handler offload — attributed to the object the thread is running
    ///   (the *bound service object* of [`FppaPlatform::bind_service`]);
    /// * a call to a **PE** carries a marshalled DSOC invocation —
    ///   attributed to the invoked (target) object from the wire header,
    ///   so twoway round trips land on the service object that answers
    ///   them, wherever the caller runs.
    ///
    /// `None` (manually spawned programs, no installed application, or an
    /// undecodable payload) records nothing.
    fn call_attribution(&self, p: usize, tid: usize, dst: NodeId, data: &[u8]) -> Option<ObjectId> {
        match self.roles.get(dst.0)? {
            NodeRole::Memory(_) | NodeRole::Fabric(_) | NodeRole::HwIp(_) => self
                .runtime
                .as_ref()
                .and_then(|rt| rt.thread_object(p, tid)),
            NodeRole::Pe(_) => MessageView::decode(data)
                .ok()
                .filter(|m| m.kind == MessageKind::Invocation)
                .map(|m| m.object),
            NodeRole::Io(_) => None,
        }
    }

    fn collect_pe_requests(&mut self, now: Cycles) {
        for p in 0..self.pes.len() {
            if !self.pes[p].has_requests() {
                continue;
            }
            let src = self.pe_nodes[p];
            for (tid, req) in self.pes[p].take_requests() {
                match req {
                    PeRequest::Send {
                        dst,
                        bytes,
                        mut data,
                        tag,
                    } => {
                        self.pool.pad_zeroed(&mut data, bytes as usize);
                        self.outbox.push_back(Outgoing {
                            src,
                            dst,
                            data,
                            tag,
                            on_accept: Some((PeId(p), tid)),
                        });
                    }
                    PeRequest::Call {
                        dst,
                        bytes,
                        reply_bytes,
                        mut data,
                    } => {
                        // Open the latency probe: the round trip ends when
                        // the reply packet is delivered back to this thread.
                        if let Some(obj) = self
                            .call_attribution(p, tid.0, dst, &data)
                            .filter(|o| o.0 < self.object_latency.len())
                        {
                            self.call_issue[p][tid.0] = Some((now, obj));
                        }
                        self.pool.pad_zeroed(&mut data, bytes as usize);
                        // With the retry layer on, open a pending entry
                        // holding a pool-accounted clone of the payload and
                        // stamp its token on the tag; off, token 0 keeps
                        // the tag bit-identical to the legacy layout.
                        let token = if let Some(rs) = self.resilience.as_mut() {
                            let mut copy = self.pool.take();
                            copy.extend_from_slice(&data);
                            rs.open(p, tid.0, dst, reply_bytes, copy, now.0)
                        } else {
                            0
                        };
                        let tag = RequestTag {
                            pe: PeId(p),
                            tid,
                            token,
                            reply_bytes,
                        }
                        .encode();
                        self.outbox.push_back(Outgoing {
                            src,
                            dst,
                            data,
                            tag,
                            on_accept: None,
                        });
                    }
                }
            }
        }
    }

    fn flush_outbox(&mut self, now: Cycles) {
        let mut remaining = VecDeque::new();
        while let Some(out) = self.outbox.pop_front() {
            // Guard with ni_free so the payload is only moved into the NoC
            // when acceptance is certain; a full NI means retry next cycle.
            if self.noc.ni_free(out.src) == 0 {
                remaining.push_back(out);
                continue;
            }
            let bytes = out.data.len();
            self.noc
                .try_inject(out.src, out.dst, out.data, out.tag, now)
                .expect("NI space was checked and platform nodes are valid");
            if let Some(s) = self.obs_sink.as_deref_mut() {
                s.emit(TraceEvent::FlitInject {
                    cycle: now.0,
                    src: out.src.0,
                    dst: out.dst.0,
                    bytes,
                });
            }
            if let Some((pe, tid)) = out.on_accept {
                // Data-driven wake: the NI accepted the async send. With
                // faults enabled the issuing PE may have crashed between
                // issue and acceptance — its thread is no longer awaiting,
                // so the wake is skipped (fault-free runs keep the
                // unconditional legacy path, assertion included).
                if self.campaign.is_none() || self.pes[pe.0].is_awaiting(tid) {
                    self.pe_active[pe.0] = true;
                    self.pes[pe.0].complete(tid);
                }
            }
        }
        self.outbox = remaining;
    }

    /// Resizes and clears the latency telemetry for a freshly installed
    /// application of `n_objects` objects.
    pub(crate) fn reset_latency_telemetry(&mut self, n_objects: usize) {
        self.object_latency = vec![LatencyHistogram::new(); n_objects];
        self.latency_deadlines = vec![None; n_objects];
        self.deadline_misses = vec![0; n_objects];
        for slots in &mut self.call_issue {
            slots.fill(None);
        }
    }

    /// Sets a per-object deadline budget: every recorded end-to-end round
    /// trip attributed to `object` that exceeds `cycles` counts as a
    /// deadline miss in [`PlatformReport::latency`] (the budget is checked
    /// at reply delivery; already-recorded samples are not re-judged).
    ///
    /// [`PlatformReport::latency`]: crate::report::PlatformReport::latency
    ///
    /// # Errors
    ///
    /// [`crate::runtime::InstallError::NoApp`] without an installed
    /// application; [`crate::runtime::InstallError::UnknownObject`] when
    /// `object` is not part of it.
    pub fn set_latency_deadline(
        &mut self,
        object: ObjectId,
        cycles: u64,
    ) -> Result<(), crate::runtime::InstallError> {
        if self.runtime.is_none() {
            return Err(crate::runtime::InstallError::NoApp);
        }
        let Some(slot) = self.latency_deadlines.get_mut(object.0) else {
            return Err(crate::runtime::InstallError::UnknownObject(object));
        };
        *slot = Some(cycles);
        Ok(())
    }

    /// The end-to-end latency histogram of `object` (empty until its first
    /// recorded round trip; `None` when no application is installed or the
    /// id is out of range). Aggregate across objects with
    /// [`LatencyHistogram::merge`].
    pub fn object_latency(&self, object: ObjectId) -> Option<&LatencyHistogram> {
        self.object_latency.get(object.0)
    }

    pub(crate) fn object_latency_slice(&self) -> &[LatencyHistogram] {
        &self.object_latency
    }

    pub(crate) fn latency_deadlines_slice(&self) -> &[Option<u64>] {
        &self.latency_deadlines
    }

    pub(crate) fn deadline_misses_slice(&self) -> &[u64] {
        &self.deadline_misses
    }

    /// Builds the report for the last `elapsed` cycles of activity.
    ///
    /// Takes `&mut self` because the active-set scheduler defers busy/idle
    /// accounting for dormant PEs; reporting settles it first.
    pub fn report(&mut self, elapsed: Cycles) -> PlatformReport {
        self.settle();
        PlatformReport::collect(self, elapsed)
    }

    pub(crate) fn pes_slice(&self) -> &[Pe] {
        &self.pes
    }

    pub(crate) fn mems_slice(&self) -> &[MemoryController] {
        &self.mems
    }

    pub(crate) fn fabrics_slice(&self) -> &[Efpga] {
        &self.fabrics
    }

    pub(crate) fn hwips_slice(&self) -> &[HwIpBlock] {
        &self.hwips
    }

    pub(crate) fn ios_slice(&self) -> &[IoChannel] {
        &self.ios
    }

    pub(crate) fn noc_ref(&self) -> &Noc {
        &self.noc
    }

    /// Clock frequency at the configured technology node.
    pub fn clock_hz(&self) -> f64 {
        self.cfg.tech.nominal_clock_hz()
    }

    /// Total dynamic energy across all components.
    pub fn total_energy(&self) -> Picojoules {
        let pe: Picojoules = self.pes.iter().map(|p| p.stats().energy).sum();
        let mem: Picojoules = self.mems.iter().map(|m| m.energy()).sum();
        let fab: Picojoules = self.fabrics.iter().map(|f| f.energy()).sum();
        let hw: Picojoules = self.hwips.iter().map(|h| h.energy()).sum();
        pe + mem + fab + hw
    }
}
