//! The cycle-stepped FPPA platform.
//!
//! [`FppaPlatform`] wires every substrate together behind one NoC: PEs raise
//! [`PeRequest`]s that become packets, service nodes (memory, eFPGA,
//! hardwired IP) answer tagged requests, I/O channels pace ingress traffic
//! at line rate and absorb egress, and the DSOC runtime (in
//! [`runtime`](crate::runtime)) dispatches marshalled invocations onto
//! hardware threads.
//!
//! Within each cycle the platform advances in a fixed order — I/O pacing,
//! ingress injection, NoC, arrival routing, service nodes, DSOC dispatch,
//! PEs, request servicing, and the injection retry queue — which makes whole
//! runs bit-reproducible.
//!
//! [`PeRequest`]: nw_pe::PeRequest

use crate::config::{BuildPlatformError, FppaConfig};
use crate::report::PlatformReport;
use crate::runtime::Runtime;
use crate::tags::{is_reply, RequestTag};
use nw_fabric::Efpga;
use nw_hwip::{HwIpBlock, IoChannel};
use nw_mem::{MemRequest, MemoryController, MemorySpec, ReqKind};
use nw_noc::{Noc, Topology};
use nw_pe::{Pe, PeRequest};
use nw_sim::{Clock, Clocked};
use nw_types::{AreaMm2, Cycles, NodeId, PeId, Picojoules};
use std::collections::{HashMap, VecDeque};

/// What sits at one NoC endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Processing element (index into the PE list).
    Pe(usize),
    /// Memory controller.
    Memory(usize),
    /// Embedded FPGA fabric.
    Fabric(usize),
    /// Hardwired IP block.
    HwIp(usize),
    /// I/O channel.
    Io(usize),
}

/// A packet queued for injection (with retry-on-backpressure).
#[derive(Debug)]
pub(crate) struct Outgoing {
    pub src: NodeId,
    pub dst: NodeId,
    pub data: Vec<u8>,
    pub tag: u64,
    /// Thread to complete once the NI accepts the packet (async sends).
    pub on_accept: Option<(PeId, nw_types::ThreadId)>,
}

/// The assembled platform.
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug)]
pub struct FppaPlatform {
    cfg: FppaConfig,
    noc: Noc,
    pes: Vec<Pe>,
    mems: Vec<MemoryController>,
    fabrics: Vec<Efpga>,
    hwips: Vec<HwIpBlock>,
    ios: Vec<IoChannel>,
    roles: Vec<NodeRole>,
    pe_nodes: Vec<NodeId>,
    mem_nodes: Vec<NodeId>,
    fabric_nodes: Vec<NodeId>,
    hwip_nodes: Vec<NodeId>,
    io_nodes: Vec<NodeId>,
    clock: Clock,
    outbox: VecDeque<Outgoing>,
    /// In-flight service requests per memory: request id → (tag, reply-to).
    mem_inflight: Vec<HashMap<u64, (u64, NodeId)>>,
    /// Parked memory requests (bank queues full): (request, tag, reply-to).
    mem_parked: Vec<VecDeque<(MemRequest, u64, NodeId)>>,
    fabric_inflight: Vec<HashMap<u64, (u64, NodeId)>>,
    fabric_parked: Vec<VecDeque<(u64, NodeId)>>,
    hwip_inflight: Vec<HashMap<u64, (u64, NodeId)>>,
    hwip_parked: Vec<VecDeque<(u64, NodeId)>>,
    next_service_id: u64,
    pub(crate) runtime: Option<Runtime>,
}

impl FppaPlatform {
    /// Builds the platform from its configuration.
    ///
    /// # Errors
    ///
    /// [`BuildPlatformError::NoPes`] for an empty platform;
    /// [`BuildPlatformError::Topology`] if the NoC cannot be built.
    pub fn new(cfg: FppaConfig) -> Result<Self, BuildPlatformError> {
        if cfg.pes.is_empty() {
            return Err(BuildPlatformError::NoPes);
        }
        let n = cfg.n_endpoints();
        let link_latency = cfg.effective_link_latency();
        let topo = Topology::build(cfg.topology, n, link_latency)?;
        // Credit-based flow control only keeps long links busy when the
        // buffer pool covers the credit round trip (the latency-bandwidth
        // product); undersized buffers cause tree saturation long before
        // the wires are full.
        let mut noc_cfg = cfg.noc;
        noc_cfg.input_buffer = noc_cfg
            .input_buffer
            .max(4 + (link_latency + noc_cfg.router_delay) as usize / 2);
        let noc = Noc::new(topo, noc_cfg);

        let mut roles = Vec::with_capacity(n);
        let mut pe_nodes = Vec::new();
        let mut mem_nodes = Vec::new();
        let mut fabric_nodes = Vec::new();
        let mut hwip_nodes = Vec::new();
        let mut io_nodes = Vec::new();

        let pes: Vec<Pe> = cfg.pes.iter().cloned().map(Pe::new).collect();
        for i in 0..pes.len() {
            pe_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Pe(i));
        }
        let mems: Vec<MemoryController> = cfg
            .memories
            .iter()
            .map(|m| {
                MemoryController::new(
                    MemorySpec::at_node(m.technology, cfg.tech),
                    m.banks,
                    m.queue_depth,
                )
            })
            .collect();
        for i in 0..mems.len() {
            mem_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Memory(i));
        }
        let fabrics: Vec<Efpga> = cfg.fabrics.iter().map(|f| Efpga::new(*f)).collect();
        for i in 0..fabrics.len() {
            fabric_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Fabric(i));
        }
        let hwips: Vec<HwIpBlock> = cfg
            .hwip
            .iter()
            .map(|h| HwIpBlock::new(&h.name, h.ii, h.latency, h.area, h.energy_per_item, 64))
            .collect();
        for i in 0..hwips.len() {
            hwip_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::HwIp(i));
        }
        let ios: Vec<IoChannel> = cfg.io.iter().map(|c| IoChannel::new(*c)).collect();
        for i in 0..ios.len() {
            io_nodes.push(NodeId(roles.len()));
            roles.push(NodeRole::Io(i));
        }

        let n_mems = mems.len();
        let n_fabrics = fabrics.len();
        let n_hwips = hwips.len();
        Ok(FppaPlatform {
            cfg,
            noc,
            pes,
            mems,
            fabrics,
            hwips,
            ios,
            roles,
            pe_nodes,
            mem_nodes,
            fabric_nodes,
            hwip_nodes,
            io_nodes,
            clock: Clock::new(),
            outbox: VecDeque::new(),
            mem_inflight: (0..n_mems).map(|_| HashMap::new()).collect(),
            mem_parked: (0..n_mems).map(|_| VecDeque::new()).collect(),
            fabric_inflight: (0..n_fabrics).map(|_| HashMap::new()).collect(),
            fabric_parked: (0..n_fabrics).map(|_| VecDeque::new()).collect(),
            hwip_inflight: (0..n_hwips).map(|_| HashMap::new()).collect(),
            hwip_parked: (0..n_hwips).map(|_| VecDeque::new()).collect(),
            next_service_id: 0,
            runtime: None,
        })
    }

    /// The configuration the platform was built from.
    pub fn config(&self) -> &FppaConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// The NoC node hosting PE `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe_node(&self, i: usize) -> NodeId {
        self.pe_nodes[i]
    }

    /// The NoC node hosting memory `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn memory_node(&self, i: usize) -> NodeId {
        self.mem_nodes[i]
    }

    /// The NoC node hosting eFPGA fabric `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fabric_node(&self, i: usize) -> NodeId {
        self.fabric_nodes[i]
    }

    /// The NoC node hosting hardwired IP `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hwip_node(&self, i: usize) -> NodeId {
        self.hwip_nodes[i]
    }

    /// The NoC node hosting I/O channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn io_node(&self, i: usize) -> NodeId {
        self.io_nodes[i]
    }

    /// The role at an endpoint.
    pub fn role(&self, node: NodeId) -> Option<NodeRole> {
        self.roles.get(node.0).copied()
    }

    /// Direct access to a PE (inspection, custom program spawning).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe(&self, i: usize) -> &Pe {
        &self.pes[i]
    }

    /// Mutable access to a PE.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe_mut(&mut self, i: usize) -> &mut Pe {
        &mut self.pes[i]
    }

    /// Direct access to an eFPGA fabric (configuration).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fabric_mut(&mut self, i: usize) -> &mut Efpga {
        &mut self.fabrics[i]
    }

    /// Direct access to an I/O channel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn io(&self, i: usize) -> &IoChannel {
        &self.ios[i]
    }

    /// NoC hop-distance matrix over all endpoints (input for the MultiFlex
    /// mappers).
    pub fn hop_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.roles.len();
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| self.noc.topology().hops(a, b) as f64)
                    .collect()
            })
            .collect()
    }

    /// Total die area of the declared components (PE cores + memory macros +
    /// fabrics + hardwired IP) at the configured node.
    pub fn area(&self) -> AreaMm2 {
        let pe_area: AreaMm2 = self.cfg.pes.iter().map(|p| p.class.core_area()).sum();
        let mem_area: AreaMm2 = self
            .cfg
            .memories
            .iter()
            .map(|m| MemorySpec::at_node(m.technology, self.cfg.tech).macro_area(m.mbits))
            .sum();
        let fabric_area: AreaMm2 = self
            .fabrics
            .iter()
            .filter_map(|f| f.kernel().map(|k| k.area))
            .sum();
        let hwip_area: AreaMm2 = self.hwips.iter().map(|h| h.area()).sum();
        pe_area + mem_area + fabric_area + hwip_area
    }

    /// Runs the platform for `cycles` cycles and reports.
    pub fn run(&mut self, cycles: u64) -> PlatformReport {
        let start = self.clock.now();
        for _ in 0..cycles {
            self.step();
        }
        self.report(self.clock.now().saturating_sub(start))
    }

    /// Advances the platform by one cycle.
    pub fn step(&mut self) {
        let now = self.clock.now();

        // 1. I/O pacing and ingress injection.
        for i in 0..self.ios.len() {
            self.ios[i].tick(now);
        }
        self.io_ingress(now);

        // 2. The interconnect.
        self.noc.tick(now);

        // 3. Route arrivals.
        self.route_arrivals(now);

        // 4. Service nodes: memories, fabrics, hardwired IP.
        self.tick_services(now);

        // 5. DSOC drives and dispatch.
        self.runtime_dispatch(now);

        // 6. PEs execute; their requests become packets.
        for i in 0..self.pes.len() {
            self.pes[i].tick(now);
        }
        self.collect_pe_requests();

        // 7. Flush the injection retry queue.
        self.flush_outbox(now);

        self.clock.advance();
    }

    /// Drains line-rate ingress into DSOC invocations (runtime present) or
    /// discards descriptors (no app installed).
    fn io_ingress(&mut self, now: Cycles) {
        let Some(rt) = self.runtime.as_mut() else {
            return;
        };
        for (i, io) in self.ios.iter_mut().enumerate() {
            if !rt.io_has_bindings(i) {
                continue;
            }
            let io_node = self.io_nodes[i];
            // Only drain what the NI can take this cycle; the rest waits in
            // the RX FIFO (and overflows are counted as line drops).
            while self.noc.ni_free(io_node) > 0 {
                let Some(_seq) = io.take_rx() else { break };
                let (dst, data) = rt.ingress_invocation(i);
                self.noc
                    .try_inject(io_node, dst, data, 0, now)
                    .expect("ni_free was checked");
            }
        }
    }

    fn route_arrivals(&mut self, now: Cycles) {
        for node in 0..self.roles.len() {
            while let Some(pkt) = self.noc.eject(NodeId(node)) {
                match self.roles[node] {
                    NodeRole::Pe(p) => {
                        if is_reply(pkt.tag) {
                            let t = RequestTag::decode(pkt.tag);
                            self.pes[p].complete(t.tid);
                        } else if let Some(rt) = self.runtime.as_mut() {
                            rt.enqueue_invocation(p, &pkt);
                        }
                    }
                    NodeRole::Memory(m) => {
                        let t = RequestTag::decode(pkt.tag);
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        let req = MemRequest {
                            id,
                            kind: ReqKind::Read,
                            addr: id.wrapping_mul(MemoryController::INTERLEAVE),
                            bytes: t.reply_bytes.max(1),
                        };
                        match self.mems[m].submit(req, now) {
                            Ok(()) => {
                                self.mem_inflight[m].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.mem_parked[m].push_back((req, pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::Fabric(f) => {
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        match self.fabrics[f].try_submit(id, now) {
                            Ok(()) => {
                                self.fabric_inflight[f].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.fabric_parked[f].push_back((pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::HwIp(h) => {
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        match self.hwips[h].try_submit(id, now) {
                            Ok(()) => {
                                self.hwip_inflight[h].insert(id, (pkt.tag, pkt.src));
                            }
                            Err(_) => {
                                self.hwip_parked[h].push_back((pkt.tag, pkt.src));
                            }
                        }
                    }
                    NodeRole::Io(i) => {
                        self.ios[i].transmit(pkt.wire_bytes());
                    }
                }
            }
        }
    }

    fn tick_services(&mut self, now: Cycles) {
        // Memories: retry parked, tick, answer completions.
        for m in 0..self.mems.len() {
            while let Some(&(req, tag, src)) = self.mem_parked[m].front() {
                if self.mems[m].submit(req, now).is_ok() {
                    self.mem_inflight[m].insert(req.id, (tag, src));
                    self.mem_parked[m].pop_front();
                } else {
                    break;
                }
            }
            self.mems[m].tick(now);
            while let Some(resp) = self.mems[m].take_response() {
                if let Some((tag, reply_to)) = self.mem_inflight[m].remove(&resp.id) {
                    self.push_service_reply(self.mem_nodes[m], reply_to, tag);
                }
            }
        }
        for f in 0..self.fabrics.len() {
            while let Some(&(tag, src)) = self.fabric_parked[f].front() {
                let id = self.next_service_id;
                if self.fabrics[f].try_submit(id, now).is_ok() {
                    self.next_service_id += 1;
                    self.fabric_inflight[f].insert(id, (tag, src));
                    self.fabric_parked[f].pop_front();
                } else {
                    break;
                }
            }
            self.fabrics[f].tick(now);
            while let Some(id) = self.fabrics[f].take_done() {
                if let Some((tag, reply_to)) = self.fabric_inflight[f].remove(&id) {
                    self.push_service_reply(self.fabric_nodes[f], reply_to, tag);
                }
            }
        }
        for h in 0..self.hwips.len() {
            while let Some(&(tag, src)) = self.hwip_parked[h].front() {
                let id = self.next_service_id;
                if self.hwips[h].try_submit(id, now).is_ok() {
                    self.next_service_id += 1;
                    self.hwip_inflight[h].insert(id, (tag, src));
                    self.hwip_parked[h].pop_front();
                } else {
                    break;
                }
            }
            self.hwips[h].tick(now);
            while let Some(id) = self.hwips[h].take_done() {
                if let Some((tag, reply_to)) = self.hwip_inflight[h].remove(&id) {
                    self.push_service_reply(self.hwip_nodes[h], reply_to, tag);
                }
            }
        }
    }

    fn push_service_reply(&mut self, src: NodeId, dst: NodeId, tag: u64) {
        let t = RequestTag::decode(tag);
        self.outbox.push_back(Outgoing {
            src,
            dst,
            data: vec![0; t.reply_bytes as usize],
            tag: t.encode_reply(),
            on_accept: None,
        });
    }

    fn runtime_dispatch(&mut self, now: Cycles) {
        let Some(mut rt) = self.runtime.take() else {
            return;
        };
        rt.drive(now);
        rt.dispatch(&mut self.pes);
        self.runtime = Some(rt);
    }

    fn collect_pe_requests(&mut self) {
        for p in 0..self.pes.len() {
            let src = self.pe_nodes[p];
            for (tid, req) in self.pes[p].take_requests() {
                match req {
                    PeRequest::Send {
                        dst,
                        bytes,
                        mut data,
                        tag,
                    } => {
                        if (data.len() as u64) < bytes {
                            data.resize(bytes as usize, 0);
                        }
                        self.outbox.push_back(Outgoing {
                            src,
                            dst,
                            data,
                            tag,
                            on_accept: Some((PeId(p), tid)),
                        });
                    }
                    PeRequest::Call {
                        dst,
                        bytes,
                        reply_bytes,
                        mut data,
                    } => {
                        if (data.len() as u64) < bytes {
                            data.resize(bytes as usize, 0);
                        }
                        let tag = RequestTag {
                            pe: PeId(p),
                            tid,
                            reply_bytes,
                        }
                        .encode();
                        self.outbox.push_back(Outgoing {
                            src,
                            dst,
                            data,
                            tag,
                            on_accept: None,
                        });
                    }
                }
            }
        }
    }

    fn flush_outbox(&mut self, now: Cycles) {
        let mut remaining = VecDeque::new();
        while let Some(out) = self.outbox.pop_front() {
            // Guard with ni_free so the payload is only moved into the NoC
            // when acceptance is certain; a full NI means retry next cycle.
            if self.noc.ni_free(out.src) == 0 {
                remaining.push_back(out);
                continue;
            }
            self.noc
                .try_inject(out.src, out.dst, out.data, out.tag, now)
                .expect("NI space was checked and platform nodes are valid");
            if let Some((pe, tid)) = out.on_accept {
                self.pes[pe.0].complete(tid);
            }
        }
        self.outbox = remaining;
    }

    /// Builds the report for the last `elapsed` cycles of activity.
    pub fn report(&self, elapsed: Cycles) -> PlatformReport {
        PlatformReport::collect(self, elapsed)
    }

    pub(crate) fn pes_slice(&self) -> &[Pe] {
        &self.pes
    }

    pub(crate) fn mems_slice(&self) -> &[MemoryController] {
        &self.mems
    }

    pub(crate) fn fabrics_slice(&self) -> &[Efpga] {
        &self.fabrics
    }

    pub(crate) fn hwips_slice(&self) -> &[HwIpBlock] {
        &self.hwips
    }

    pub(crate) fn ios_slice(&self) -> &[IoChannel] {
        &self.ios
    }

    pub(crate) fn noc_ref(&self) -> &Noc {
        &self.noc
    }

    /// Clock frequency at the configured technology node.
    pub fn clock_hz(&self) -> f64 {
        self.cfg.tech.nominal_clock_hz()
    }

    /// Total dynamic energy across all components.
    pub fn total_energy(&self) -> Picojoules {
        let pe: Picojoules = self.pes.iter().map(|p| p.stats().energy).sum();
        let mem: Picojoules = self.mems.iter().map(|m| m.energy()).sum();
        let fab: Picojoules = self.fabrics.iter().map(|f| f.energy()).sum();
        let hw: Picojoules = self.hwips.iter().map(|h| h.energy()).sum();
        pe + mem + fab + hw
    }
}
