//! Scheduler differential suite: the active-set event-driven scheduler must
//! be **bit-identical** to the dense reference scheduler on every registered
//! scenario — same `PlatformReport` down to the last f64 bit, same NoC
//! histogram buckets, same energy.
//!
//! The dense path ticks every component every cycle; the active-set path
//! skips dormant PEs (settling their accounting in bulk), quiescent service
//! nodes and NoC scans, and fast-forwards fully idle spans. Any divergence
//! between the two is a scheduler bug, so this suite runs every scenario
//! under both modes, including mid-run windows and manual stepping.

use nanowall::{ScenarioRegistry, SchedulerMode};

/// Runs `name` under one scheduler for `cycles` and returns the report.
fn run_mode(name: &str, mode: SchedulerMode, cycles: u64) -> nanowall::PlatformReport {
    let reg = ScenarioRegistry::standard();
    let mut rig = reg.build(name, true).expect("registered scenario");
    rig.platform.set_scheduler_mode(mode);
    rig.run(cycles)
}

#[test]
fn every_scenario_is_bit_identical_across_schedulers() {
    for name in ScenarioRegistry::standard().names() {
        let dense = run_mode(name, SchedulerMode::Dense, 20_000);
        let active = run_mode(name, SchedulerMode::ActiveSet, 20_000);
        assert_eq!(
            dense, active,
            "{name}: active-set scheduler diverged from the dense reference"
        );
        // Sanity: the comparison is not vacuous.
        assert!(dense.tasks_completed > 0, "{name} must do work");
    }
}

#[test]
fn windowed_runs_stay_identical() {
    // Reports taken at intermediate windows must agree too — the lazy
    // accounting settles exactly at every report boundary.
    for name in ["ipv4", "crypto"] {
        let reg = ScenarioRegistry::standard();
        let mut dense = reg.build(name, true).expect("registered");
        dense.platform.set_scheduler_mode(SchedulerMode::Dense);
        let mut active = reg.build(name, true).expect("registered");
        active.platform.set_scheduler_mode(SchedulerMode::ActiveSet);
        for window in [3_000u64, 5_000, 9_000] {
            let d = dense.run(window);
            let a = active.run(window);
            assert_eq!(d, a, "{name}: diverged in a {window}-cycle window");
        }
    }
}

#[test]
fn manual_stepping_matches_run() {
    // step() under the active-set scheduler must trace the same states as
    // the dense step; report() settles lazy accounting in both cases.
    let reg = ScenarioRegistry::standard();
    let mut dense = reg.build("modem", true).expect("registered");
    dense.platform.set_scheduler_mode(SchedulerMode::Dense);
    let mut active = reg.build("modem", true).expect("registered");
    active.platform.set_scheduler_mode(SchedulerMode::ActiveSet);
    for _ in 0..12_000 {
        dense.platform.step();
        active.platform.step();
    }
    let d = dense.platform.report(nw_types::Cycles(12_000));
    let a = active.platform.report(nw_types::Cycles(12_000));
    assert_eq!(d, a, "stepped modem rig diverged");
}

#[test]
fn large_idle_span_is_identical_and_fast_forwarded() {
    // A rig driven far below capacity spends most cycles idle — exactly the
    // case the fast-forward targets. 200k cycles of a low-rate modem rig.
    let mut dense = nanowall::scenarios::modem_rig(
        &nw_apps::ModemParams::default(),
        6,
        4,
        50,
        40.0, // 40 Mb/s: a burst only every few thousand cycles
    );
    dense.platform.set_scheduler_mode(SchedulerMode::Dense);
    let mut active =
        nanowall::scenarios::modem_rig(&nw_apps::ModemParams::default(), 6, 4, 50, 40.0);
    active.platform.set_scheduler_mode(SchedulerMode::ActiveSet);
    let d = dense.run(200_000);
    let a = active.run(200_000);
    assert_eq!(d, a, "large-idle modem run diverged");
    assert!(d.io[0].generated > 0, "the line must generate bursts");
}

#[test]
fn payload_pool_conserves_buffers_at_quiescence() {
    // Resource-hygiene half of the determinism contract (the static half is
    // nw-analyze rule RH01): every payload buffer the pool hands out —
    // request payloads padded at send, service replies — must come back
    // when its packet is consumed. Build a platform with no I/O channels so
    // a finite batch of tasks drives it fully quiescent, then check the
    // take/put ledger balances exactly, under both schedulers.
    use nanowall::prelude::*;
    use nanowall::MemoryBlockConfig;

    let run_mode = |mode: SchedulerMode| {
        let mut cfg = FppaConfig::new("pool-conservation", TopologyKind::Mesh);
        for _ in 0..4 {
            cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
        }
        cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 2.0));
        let mut platform = FppaPlatform::new(cfg).expect("config valid");
        platform.set_scheduler_mode(mode);
        let sram = platform.memory_node(0);
        let prog = nw_pe::Program::straight_line([
            nw_pe::Op::Compute(10),
            nw_pe::Op::call(sram, 16, 48),
            nw_pe::Op::Compute(5),
            nw_pe::Op::call(sram, 8, 8),
        ]);
        for pe in 0..4 {
            while platform.pe(pe).idle_threads() > 0 {
                platform.pe_mut(pe).spawn(prog.clone()).unwrap();
            }
        }
        // A finite batch on an I/O-less platform quiesces well inside this
        // window. (The dense scheduler keeps every PE conservatively marked
        // active, so the event horizon can't certify quiescence there — a
        // fixed ample window covers both modes identically.)
        const WINDOW: u64 = 20_000;
        for _ in 0..WINDOW {
            platform.step();
        }
        if mode == SchedulerMode::ActiveSet {
            assert!(
                platform.next_event_cycle().is_none(),
                "active-set rig still holds work after the batch window"
            );
        }
        assert_eq!(
            platform.payload_outstanding(),
            0,
            "{mode:?}: payload buffers leaked (taken != returned at quiescence)"
        );
        let report = platform.report(Cycles(WINDOW));
        assert_eq!(report.tasks_completed, 8, "{mode:?}: one task per thread");
        report
    };

    let dense = run_mode(SchedulerMode::Dense);
    let active = run_mode(SchedulerMode::ActiveSet);
    assert_eq!(dense, active, "conservation rig diverged across schedulers");
}

#[test]
fn tracing_does_not_perturb_results() {
    // The observability contract: installing a trace sink changes what is
    // *recorded*, never what is *simulated*. Every registered scenario must
    // produce a bit-identical report with tracing on vs off, under both
    // schedulers — and the traced run must actually capture events, so the
    // comparison is not vacuous.
    use nanowall::RingBufferSink;
    for name in ScenarioRegistry::standard().names() {
        for mode in [SchedulerMode::Dense, SchedulerMode::ActiveSet] {
            let reg = ScenarioRegistry::standard();
            let mut plain = reg.build(name, true).expect("registered scenario");
            plain.platform.set_scheduler_mode(mode);
            let mut traced = reg.build(name, true).expect("registered scenario");
            traced.platform.set_scheduler_mode(mode);
            traced
                .platform
                .set_trace_sink(Box::new(RingBufferSink::new(1 << 14)));
            let p = plain.run(10_000);
            let t = traced.run(10_000);
            assert_eq!(p, t, "{name} under {mode:?}: tracing perturbed the run");
            let mut sink = traced.platform.take_trace_sink().expect("sink installed");
            let events = sink
                .as_any_mut()
                .downcast_mut::<RingBufferSink>()
                .expect("ring sink")
                .drain();
            assert!(
                !events.is_empty(),
                "{name} under {mode:?}: traced run captured nothing"
            );
        }
    }
}

#[test]
fn warmed_forks_anchor_to_the_original_seed_and_diverge_on_new_ones() {
    // The replica contract behind `expt t13`: one warmed-up platform fans
    // out into N measurement replicas via `fork(seed)`. Forking with the
    // *campaign's own* seed must be bit-identical to the run that was never
    // snapshotted (the reseed is a no-op at the drain boundary), while
    // distinct seeds redraw the undrained fault future and must diverge —
    // and forking must never mutate the parent.
    use nanowall::{FaultCampaign, FaultRates, RetryPolicy};

    const CAMPAIGN_SEED: u64 = 42;
    const WARM: u64 = 6_000;
    const MEASURE: u64 = 20_000;

    let arm = |platform: &mut nanowall::FppaPlatform| {
        let mut rates = FaultRates::scaled(3.0);
        rates.pe_crashes += 2;
        rates.pe_downtime = (200, 2_000);
        let shape = platform.fault_shape();
        platform.install_fault_campaign(FaultCampaign::generate(
            CAMPAIGN_SEED,
            WARM + MEASURE,
            &rates,
            &shape,
        ));
        platform.set_retry_policy(RetryPolicy::default());
    };

    for mode in [SchedulerMode::Dense, SchedulerMode::ActiveSet] {
        let reg = ScenarioRegistry::standard();

        // Never-snapshotted reference: warm, then measure.
        let mut reference = reg.build("ipv4", true).expect("registered");
        reference.platform.set_scheduler_mode(mode);
        arm(&mut reference.platform);
        let _ = reference.run(WARM);
        let want = reference.run(MEASURE);

        // Warmed parent that fans out.
        let mut parent = reg.build("ipv4", true).expect("registered");
        parent.platform.set_scheduler_mode(mode);
        arm(&mut parent.platform);
        let _ = parent.run(WARM);

        // Original-seed fork reproduces the uninterrupted run exactly.
        let mut anchor = parent.platform.fork(CAMPAIGN_SEED);
        let got = anchor.run(MEASURE);
        assert_eq!(
            got, want,
            "{mode:?}: original-seed fork diverged from the never-snapshotted run"
        );

        // Distinct seeds redraw the fault future: replicas diverge from the
        // anchor and from each other, and the same seed is reproducible.
        let mut replica_a = parent.platform.fork(1001);
        let mut replica_a2 = parent.platform.fork(1001);
        let mut replica_b = parent.platform.fork(2002);
        let rep_a = replica_a.run(MEASURE);
        let rep_a2 = replica_a2.run(MEASURE);
        let rep_b = replica_b.run(MEASURE);
        assert_eq!(rep_a, rep_a2, "{mode:?}: same-seed replicas must agree");
        assert_ne!(rep_a, want, "{mode:?}: reseeded replica failed to diverge");
        assert_ne!(
            rep_a, rep_b,
            "{mode:?}: distinct seeds produced one timeline"
        );

        // No state sharing through the PayloadPool or handler-plan cache:
        // running the forks left the parent untouched, so its own
        // continuation still matches the reference.
        let parent_tail = parent.run(MEASURE);
        assert_eq!(
            parent_tail, want,
            "{mode:?}: running forks perturbed the parent platform"
        );
    }
}

#[test]
fn next_event_cycle_never_overshoots() {
    // On an idle platform the platform-wide next event equals the earliest
    // component event; stepping to it must observe a state change while
    // every skipped cycle was provably a no-op (verified by the identical
    // reports above — here we check the bound itself on a quiet rig).
    let reg = ScenarioRegistry::standard();
    let mut rig = reg.build("crypto", true).expect("registered");
    rig.platform.set_scheduler_mode(SchedulerMode::ActiveSet);
    rig.run(2_000);
    if let Some(t) = rig.platform.next_event_cycle() {
        assert!(
            t >= rig.platform.now(),
            "next event {t} is in the past (now {})",
            rig.platform.now()
        );
    }
}
