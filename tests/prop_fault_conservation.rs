//! Property test: no seeded fault campaign can make the platform leak.
//!
//! For *any* campaign seed, fault level and retry policy, a finite no-I/O
//! rig driven to quiescence must balance its payload-pool ledger exactly —
//! dropped packets, corrupted replies, crashed PEs and abandoned retries
//! all return their buffers. The NoC's own debug-build audits (active-set
//! bookkeeping vs ground truth) run on every step, so a passing case also
//! certifies the router invariants under fire.

use nanowall::prelude::*;
use nanowall::{FaultCampaign, FaultRates, MemoryBlockConfig, RetryPolicy};
use proptest::prelude::*;

/// Builds the finite rig: 4 dual-thread PEs round-tripping against one
/// SRAM controller, no I/O channels, so a fixed batch of tasks drives the
/// platform fully quiescent.
fn build_rig(mode: SchedulerMode) -> FppaPlatform {
    let mut cfg = FppaConfig::new("prop-fault-conservation", TopologyKind::Mesh);
    for _ in 0..4 {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 2.0));
    let mut platform = FppaPlatform::new(cfg).expect("config valid");
    platform.set_scheduler_mode(mode);
    let sram = platform.memory_node(0);
    let prog = nw_pe::Program::straight_line([
        nw_pe::Op::Compute(10),
        nw_pe::Op::call(sram, 16, 48),
        nw_pe::Op::Compute(5),
        nw_pe::Op::call(sram, 8, 8),
    ]);
    for pe in 0..4 {
        while platform.pe(pe).idle_threads() > 0 {
            platform.pe_mut(pe).spawn(prog.clone()).unwrap();
        }
    }
    platform
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quiescence conservation under arbitrary seeded campaigns: the pool
    /// ledger balances and the batch retires (give-ups release threads even
    /// when the callee never answers), under both schedulers.
    #[test]
    fn any_campaign_conserves_buffers_at_quiescence(
        seed in 0u64..10_000,
        level_tenths in 0u32..40,
        timeout in 200u64..4_000,
        max_attempts in 1u8..5,
        dense in any::<bool>(),
    ) {
        let mode = if dense { SchedulerMode::Dense } else { SchedulerMode::ActiveSet };
        let mut platform = build_rig(mode);
        let mut rates = FaultRates::scaled(f64::from(level_tenths) / 10.0);
        // The rig is tiny; add crash pressure beyond what `scaled` gives so
        // low levels still exercise the crash path.
        rates.pe_crashes += 1;
        rates.pe_downtime = (200, 3_000);
        let shape = platform.fault_shape();
        platform.install_fault_campaign(FaultCampaign::generate(seed, 10_000, &rates, &shape));
        platform.set_retry_policy(RetryPolicy { timeout, max_attempts });
        // Ample window: worst case is max_attempts retries at doubling
        // timeouts plus a full crash downtime, still far inside 60k.
        const WINDOW: u64 = 60_000;
        for _ in 0..WINDOW {
            platform.step();
        }
        platform.settle();
        prop_assert_eq!(
            platform.payload_outstanding(),
            0,
            "seed {} level {} under {:?}: pool ledger out of balance",
            seed, level_tenths, mode
        );
        prop_assert_eq!(
            platform.pending_retries(),
            0,
            "seed {} under {:?}: retry table not drained at quiescence",
            seed, mode
        );
    }
}
