//! Fault-injection differential suite: the determinism contract with
//! faults **on**.
//!
//! The fault subsystem's hard invariant has two halves. Faults *off* must
//! be bit-identical to a build that has never heard of `nw-fault` — that
//! half is covered by `scheduler_differential.rs` running unchanged.
//! Faults *on* must be bit-identical (a) across `SchedulerMode::Dense`
//! and `SchedulerMode::ActiveSet`, and (b) across repeats of the same
//! campaign seed — a fault timeline is a pure function of
//! `(seed, horizon, rates, shape)` and its application is part of the
//! deterministic phase order, so nothing may depend on which scheduler
//! stepped the cycles.

use nanowall::{FaultCampaign, FaultRates, RetryPolicy, ScenarioRegistry, SchedulerMode};

/// Runs scenario `name` with a seeded campaign and the default retry
/// policy installed, under `mode`, and returns the report.
fn run_faulted(
    name: &str,
    mode: SchedulerMode,
    seed: u64,
    level: f64,
    cycles: u64,
) -> nanowall::PlatformReport {
    let reg = ScenarioRegistry::standard();
    let mut rig = reg.build(name, true).expect("registered scenario");
    rig.platform.set_scheduler_mode(mode);
    let shape = rig.platform.fault_shape();
    let campaign = FaultCampaign::generate(seed, cycles, &FaultRates::scaled(level), &shape);
    rig.platform.install_fault_campaign(campaign);
    rig.platform.set_retry_policy(RetryPolicy {
        timeout: 2_000,
        max_attempts: 3,
    });
    rig.run(cycles)
}

#[test]
fn faulted_runs_are_bit_identical_across_schedulers() {
    for name in ScenarioRegistry::standard().names() {
        let dense = run_faulted(name, SchedulerMode::Dense, 0xFA17, 2.0, 20_000);
        let active = run_faulted(name, SchedulerMode::ActiveSet, 0xFA17, 2.0, 20_000);
        assert_eq!(
            dense, active,
            "{name}: faulted active-set run diverged from the dense reference"
        );
        // Not vacuous: the campaign must actually have fired.
        assert!(
            dense.resilience.faults_injected > 0,
            "{name}: campaign injected nothing"
        );
        assert!(dense.tasks_completed > 0, "{name} must still do work");
    }
}

#[test]
fn faulted_runs_repeat_bit_identically_per_seed() {
    let a = run_faulted("mix", SchedulerMode::ActiveSet, 7, 2.0, 20_000);
    let b = run_faulted("mix", SchedulerMode::ActiveSet, 7, 2.0, 20_000);
    assert_eq!(a, b, "same seed must replay the same run");
    let c = run_faulted("mix", SchedulerMode::ActiveSet, 8, 2.0, 20_000);
    assert_ne!(
        a.resilience, c.resilience,
        "a different seed should schedule a different campaign"
    );
}

#[test]
fn pe_crashes_do_not_leak_pooled_buffers() {
    // The crash path's resource-hygiene half: killing a PE mid-call
    // harvests its owned buffers, cancels its retry entries (recycling the
    // stored payload clones), and the dispatch queue backs up gracefully.
    // On a finite no-I/O rig the platform still quiesces with a balanced
    // pool ledger, under both schedulers, and the two runs stay identical.
    use nanowall::prelude::*;
    use nanowall::MemoryBlockConfig;

    let run_mode = |mode: SchedulerMode| {
        let mut cfg = FppaConfig::new("crash-conservation", TopologyKind::Mesh);
        for _ in 0..4 {
            cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
        }
        cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 2.0));
        let mut platform = FppaPlatform::new(cfg).expect("config valid");
        platform.set_scheduler_mode(mode);
        let sram = platform.memory_node(0);
        let prog = nw_pe::Program::straight_line([
            nw_pe::Op::Compute(10),
            nw_pe::Op::call(sram, 16, 48),
            nw_pe::Op::Compute(5),
            nw_pe::Op::call(sram, 8, 8),
        ]);
        for pe in 0..4 {
            while platform.pe(pe).idle_threads() > 0 {
                platform.pe_mut(pe).spawn(prog.clone()).unwrap();
            }
        }
        // Crash/restart pairs only; the seeded draw picks the victims.
        let mut rates = FaultRates::quiet();
        rates.pe_crashes = 2;
        rates.pe_downtime = (500, 2_000);
        let shape = platform.fault_shape();
        let campaign = FaultCampaign::generate(11, 8_000, &rates, &shape);
        assert!(!campaign.events().is_empty());
        platform.install_fault_campaign(campaign);
        platform.set_retry_policy(RetryPolicy {
            timeout: 1_000,
            max_attempts: 2,
        });
        const WINDOW: u64 = 40_000;
        for _ in 0..WINDOW {
            platform.step();
        }
        assert_eq!(
            platform.payload_outstanding(),
            0,
            "{mode:?}: crash path leaked payload buffers"
        );
        platform.report(Cycles(WINDOW))
    };

    let dense = run_mode(SchedulerMode::Dense);
    let active = run_mode(SchedulerMode::ActiveSet);
    assert_eq!(dense, active, "crash-conservation rig diverged");
    assert!(dense.resilience.pe_crashes > 0, "no crash fired");
}

#[test]
fn hop_matrix_invalidates_when_a_link_dies() {
    // Satellite regression: `hop_matrix` is cached in a `OnceCell`; before
    // the fault subsystem the topology was immutable so the cache could
    // never go stale. Killing a link must invalidate it, and disconnected
    // pairs must read infinite.
    let reg = ScenarioRegistry::standard();
    let rig = reg.build("ipv4", true).expect("registered scenario");
    let mut platform = rig.platform;
    let before = platform.hop_matrix();
    let n = before.len();
    assert!(n > 1);
    assert!(
        before.iter().flatten().all(|h| h.is_finite()),
        "healthy topology has finite hop counts"
    );

    // Kill every output of router 0: any endpoint pair routed through it
    // must change its hop count (or become unreachable).
    let shape = platform.fault_shape();
    let mut killed = 0;
    for port in 0..shape.router_ports[0] {
        if platform.fail_noc_link(0, port) {
            killed += 1;
        }
    }
    assert!(killed > 0, "router 0 must have links to kill");
    let after = platform.hop_matrix();
    assert_ne!(
        before, after,
        "hop matrix did not recompute after links died"
    );
    assert_eq!(platform.resilience_stats().links_failed, killed);

    // Idempotence: re-failing a dead link neither recounts nor recomputes.
    let repeat = platform.fail_noc_link(0, 0);
    assert!(!repeat, "re-failing a dead link must be a no-op");
    assert_eq!(platform.resilience_stats().links_failed, killed);
    assert_eq!(platform.hop_matrix(), after);
}
