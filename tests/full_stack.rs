//! Integration tests across the whole stack: DSOC application → runtime →
//! PEs → NoC → I/O, on the assembled FPPA platform.

use nanowall::prelude::*;
use nanowall::scenarios::{fppa_tour_config, ipv4_rig, run_ipv4};

#[test]
fn ipv4_pipeline_forwards_at_sustainable_rate() {
    let mut rig = ipv4_rig(8, 8, TopologyKind::Mesh, 4, 5.0);
    let report = run_ipv4(&mut rig, 60_000);
    let io = &report.io[0];
    assert!(io.generated > 1_500, "line generated {}", io.generated);
    let forwarded = io.transmitted as f64 / io.generated as f64;
    assert!(forwarded > 0.9, "forwarded {forwarded}: {io:?}");
    // Every forwarded packet touched 4 objects = 4 tasks (+ lookup replies).
    assert!(report.tasks_completed as f64 >= io.transmitted as f64 * 3.0);
    // No protocol errors anywhere.
    assert_eq!(rig.platform.runtime().unwrap().decode_errors, 0);
}

#[test]
fn platform_runs_are_bit_deterministic() {
    let run_once = || {
        let mut rig = ipv4_rig(4, 4, TopologyKind::Torus, 8, 5.0);
        let r = run_ipv4(&mut rig, 20_000);
        (
            r.tasks_completed,
            r.io[0].transmitted,
            r.noc.delivered,
            r.noc.flit_hops,
            r.energy.0.to_bits(),
            r.pe_utilization
                .iter()
                .map(|u| u.to_bits())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn multithreading_lifts_throughput_under_noc_latency() {
    // Same platform, 1 vs 8 hardware threads, >100-cycle round trips.
    let measure = |threads: usize| {
        let mut rig = ipv4_rig(8, threads, TopologyKind::Mesh, 25, 10.0);
        let r = run_ipv4(&mut rig, 40_000);
        r.io[0].transmitted
    };
    let one = measure(1);
    let eight = measure(8);
    assert!(
        eight as f64 > one as f64 * 2.0,
        "8 threads ({eight}) should far outrun 1 thread ({one})"
    );
}

#[test]
fn topology_choice_shows_up_in_end_to_end_throughput() {
    // A shared bus strangles the same workload a crossbar carries.
    let measure = |topology: TopologyKind| {
        let mut rig = ipv4_rig(8, 8, TopologyKind::Mesh, 2, 10.0);
        // Rebuild with requested topology via a fresh rig.
        drop(rig);
        rig = ipv4_rig(8, 8, topology, 2, 10.0);
        let r = run_ipv4(&mut rig, 40_000);
        r.io[0].transmitted
    };
    let bus = measure(TopologyKind::SharedBus);
    let xbar = measure(TopologyKind::Crossbar);
    assert!(
        xbar as f64 > bus as f64 * 1.2,
        "crossbar ({xbar}) should beat the shared bus ({bus})"
    );
}

#[test]
fn figure2_platform_assembles_and_serves_every_class() {
    let cfg = fppa_tour_config();
    let n = cfg.n_endpoints();
    let mut platform = FppaPlatform::new(cfg).expect("tour config valid");
    assert_eq!(n, 14);
    // Drive a compute+memory task on every PE directly.
    let sram = platform.memory_node(0);
    let prog =
        nw_pe::Program::straight_line([nw_pe::Op::Compute(20), nw_pe::Op::call(sram, 8, 32)]);
    for c in 0..5_000u64 {
        for pe in 0..8 {
            while platform.pe(pe).idle_threads() > 0 {
                platform.pe_mut(pe).spawn(prog.clone()).unwrap();
            }
        }
        platform.step();
        let _ = c;
    }
    let report = platform.report(Cycles(5_000));
    assert!(report.tasks_completed > 100);
    assert!(report.mem_accesses > 100);
    assert!(report.mean_pe_utilization() > 0.3);
    assert!(report.energy.0 > 0.0);
    assert!(platform.area().0 > 5.0);
}

#[test]
fn install_errors_are_reported_not_panicked() {
    let mut cfg = FppaConfig::new("tiny", TopologyKind::Ring);
    cfg.add_pe(PeConfig::new(PeClass::GpRisc, 1));
    let mut platform = FppaPlatform::new(cfg).unwrap();

    let mut b = Application::builder("one");
    let o = b.add_object(ObjectDef::new("o").with_method(MethodDef::oneway("m", 8)));
    b.entry(o, 0);
    let app = b.build().unwrap();

    // Wrong placement length.
    assert!(platform.install_app(&app, &[]).is_err());
    // PE out of range.
    assert!(platform.install_app(&app, &[5]).is_err());
    // Valid install, then binding a missing I/O channel fails cleanly.
    platform.install_app(&app, &[0]).unwrap();
    assert!(platform.bind_io_entry(0, o).is_err());
    assert!(platform.bind_egress(o, 0, 40).is_err());
}
