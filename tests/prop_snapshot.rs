//! Property test: checkpointing is invisible to the simulation.
//!
//! For *any* cycle split `(a, b)`, scheduler mode and fault intensity,
//! `run(a); snapshot; run(b)` on a platform rebuilt from (or restored to)
//! the snapshot produces a byte-identical `PlatformReport` to the
//! uninterrupted `run(a); run(b)` — including splits that land mid
//! fault-campaign, so the campaign cursor and open retry deadlines must
//! survive the round trip. A trace sink on the snapshotted platform must
//! not perturb anything either.

use nanowall::prelude::*;
use nanowall::{FaultCampaign, FaultRates, MemoryBlockConfig, RetryPolicy, RingBufferSink};
use proptest::prelude::*;

/// The finite no-I/O rig of the fault-conservation suite: 4 dual-thread
/// PEs round-tripping against one SRAM controller, so arbitrary splits
/// land in a busy, retry-carrying window.
fn build_rig(mode: SchedulerMode) -> FppaPlatform {
    let mut cfg = FppaConfig::new("prop-snapshot", TopologyKind::Mesh);
    for _ in 0..4 {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 2.0));
    let mut platform = FppaPlatform::new(cfg).expect("config valid");
    platform.set_scheduler_mode(mode);
    let sram = platform.memory_node(0);
    let prog = nw_pe::Program::straight_line([
        nw_pe::Op::Compute(10),
        nw_pe::Op::call(sram, 16, 48),
        nw_pe::Op::Compute(5),
        nw_pe::Op::call(sram, 8, 8),
    ]);
    for pe in 0..4 {
        while platform.pe(pe).idle_threads() > 0 {
            platform.pe_mut(pe).spawn(prog.clone()).unwrap();
        }
    }
    platform
}

/// Installs the standard faulted-run pair (campaign + retry policy) used
/// by every case below, identical across reference and snapshot paths.
fn arm_faults(platform: &mut FppaPlatform, seed: u64, level_tenths: u32, horizon: u64) {
    if level_tenths == 0 {
        return;
    }
    let mut rates = FaultRates::scaled(f64::from(level_tenths) / 10.0);
    rates.pe_crashes += 1;
    rates.pe_downtime = (200, 3_000);
    let shape = platform.fault_shape();
    platform.install_fault_campaign(FaultCampaign::generate(seed, horizon, &rates, &shape));
    platform.set_retry_policy(RetryPolicy {
        timeout: 600,
        max_attempts: 3,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract, for arbitrary splits: a platform rebuilt
    /// from a mid-run snapshot — and the original platform restored back
    /// to it after running ahead — both finish byte-identical to the
    /// uninterrupted run, under both schedulers, with campaigns active or
    /// absent, traced or untraced.
    #[test]
    fn snapshot_round_trip_is_bit_identical(
        seed in 0u64..10_000,
        level_tenths in 0u32..30,
        a in 1u64..4_000,
        b in 1u64..4_000,
        junk in 0u64..2_000,
        dense in any::<bool>(),
        traced in any::<bool>(),
    ) {
        let mode = if dense { SchedulerMode::Dense } else { SchedulerMode::ActiveSet };
        let horizon = 8_000;

        // Uninterrupted reference: the same windows, no snapshot anywhere.
        let mut reference = build_rig(mode);
        arm_faults(&mut reference, seed, level_tenths, horizon);
        let _ = reference.run(a);
        let want = reference.run(b);

        // Snapshot path: identical rig, snapshot at the split.
        let mut original = build_rig(mode);
        arm_faults(&mut original, seed, level_tenths, horizon);
        if traced {
            original.set_trace_sink(Box::new(RingBufferSink::new(512)));
        }
        let _ = original.run(a);
        let snap = original.snapshot();

        // (1) A fresh platform rebuilt from the snapshot.
        let mut fresh = FppaPlatform::from_snapshot(&snap);
        let got_fresh = fresh.run(b);
        prop_assert_eq!(&got_fresh, &want, "from_snapshot diverged (split {}+{})", a, b);

        // (2) The original, run ahead then restored in place.
        let _ = original.run(junk);
        original.restore(&snap);
        let got_restored = original.run(b);
        prop_assert_eq!(&got_restored, &want, "restore diverged (junk {})", junk);

        // Campaign cursor and retry bookkeeping survived the round trip.
        prop_assert_eq!(fresh.pending_retries(), reference.pending_retries());
        prop_assert_eq!(
            fresh.fault_campaign().map(FaultCampaign::remaining),
            reference.fault_campaign().map(FaultCampaign::remaining)
        );
        prop_assert_eq!(fresh.payload_outstanding(), reference.payload_outstanding());
        prop_assert_eq!(original.pending_retries(), reference.pending_retries());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same contract on a line-rate I/O scenario rig (paced ingress,
    /// DSOC dispatch, latency telemetry): splits must also preserve the
    /// f64 pacing credit and the histogram state exactly.
    #[test]
    fn snapshot_round_trip_holds_on_an_io_scenario(
        a in 1u64..3_000,
        b in 1u64..3_000,
        dense in any::<bool>(),
    ) {
        let mode = if dense { SchedulerMode::Dense } else { SchedulerMode::ActiveSet };
        let registry = nanowall::ScenarioRegistry::standard();

        let mut reference = registry.build("ipv4", true).expect("registered").platform;
        reference.set_scheduler_mode(mode);
        let _ = reference.run(a);
        let want = reference.run(b);

        let mut original = registry.build("ipv4", true).expect("registered").platform;
        original.set_scheduler_mode(mode);
        let _ = original.run(a);
        let snap = original.snapshot();
        let mut fresh = FppaPlatform::from_snapshot(&snap);
        let got = fresh.run(b);
        prop_assert_eq!(&got, &want, "io rig split {}+{} diverged", a, b);
        prop_assert_eq!(fresh.payload_outstanding(), reference.payload_outstanding());
    }
}
