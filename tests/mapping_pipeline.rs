//! Integration of the MultiFlex toolchain: platform hop matrix → mapping
//! problem → mapper → broker installation → simulated execution.

use nanowall::prelude::*;
use nanowall::scenarios::{ipv4_rig_with_placement, run_ipv4};
use nw_ipv4::app::{fast_path_app, FastPathWeights};
use nw_mapping::{
    GreedyLoadMapper, Mapper, MappingProblem, PeSlot, RandomMapper, SimulatedAnnealingMapper,
};

fn build_problem(n_pes: usize, replicas: usize, gbps: f64) -> (MappingProblem, usize) {
    let (app, _) = fast_path_app(replicas, &FastPathWeights::default()).unwrap();
    // Use the real platform's hop matrix, exactly as a user of the tool
    // chain would.
    let mut cfg = FppaConfig::new("probe", TopologyKind::Mesh);
    cfg.link_latency = Some(4);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, 8));
    }
    cfg.add_memory(nanowall::MemoryBlockConfig::new(
        MemoryTechnology::Sram,
        16.0,
    ));
    cfg.add_io(IoChannelConfig::ten_gbe_worst_case());
    let platform = FppaPlatform::new(cfg).unwrap();
    let hops = platform.hop_matrix();
    let clock = platform.clock_hz();
    let pps = gbps * 1e9 / 320.0;
    let per_entry = pps / clock / replicas as f64;
    let problem = MappingProblem::new(
        app,
        vec![per_entry; replicas],
        (0..n_pes)
            .map(|i| PeSlot::new(platform.pe_node(i), 1.0))
            .collect(),
        hops,
    )
    .unwrap();
    (problem, n_pes)
}

#[test]
fn mapped_placement_executes_on_the_simulator() {
    let replicas = 4;
    let gbps = 1.5;
    let (problem, n_pes) = build_problem(6, replicas, gbps);
    let mapping = GreedyLoadMapper.map(&problem);
    let mut rig = ipv4_rig_with_placement(
        replicas,
        n_pes,
        8,
        TopologyKind::Mesh,
        4,
        gbps,
        &mapping.placement,
    );
    let report = run_ipv4(&mut rig, 50_000);
    let io = &report.io[0];
    let forwarded = io.transmitted as f64 / io.generated.max(1) as f64;
    assert!(forwarded > 0.9, "greedy placement should hold 1.5G: {io:?}");
}

#[test]
fn analytic_cost_predicts_simulated_ranking() {
    let replicas = 4;
    let gbps = 1.8;
    let (problem, n_pes) = build_problem(6, replicas, gbps);

    let evaluate = |placement: &[usize]| {
        let mut rig =
            ipv4_rig_with_placement(replicas, n_pes, 8, TopologyKind::Mesh, 4, gbps, placement);
        let r = run_ipv4(&mut rig, 50_000);
        r.io[0].transmitted as f64 / r.io[0].generated.max(1) as f64
    };

    let bad = RandomMapper { seed: 13 }.map(&problem);
    let good = SimulatedAnnealingMapper {
        iterations: 10_000,
        ..Default::default()
    }
    .map(&problem);
    assert!(good.cost.total < bad.cost.total);
    let fwd_bad = evaluate(&bad.placement);
    let fwd_good = evaluate(&good.placement);
    assert!(
        fwd_good >= fwd_bad - 0.02,
        "analytic winner must not lose on silicon: good {fwd_good} vs bad {fwd_bad}"
    );
    assert!(
        fwd_good > 0.9,
        "optimized placement holds the rate: {fwd_good}"
    );
}

#[test]
fn broker_reflects_installed_placement() {
    let replicas = 2;
    let (problem, n_pes) = build_problem(4, replicas, 1.0);
    let mapping = GreedyLoadMapper.map(&problem);
    let rig = ipv4_rig_with_placement(
        replicas,
        n_pes,
        4,
        TopologyKind::Mesh,
        4,
        1.0,
        &mapping.placement,
    );
    let rt = rig.platform.runtime().unwrap();
    for (obj, &pe) in mapping.placement.iter().enumerate() {
        assert_eq!(
            rt.broker().resolve(ObjectId(obj)).unwrap(),
            rig.platform.pe_node(pe),
            "broker must resolve object {obj} to its mapped PE"
        );
    }
}
