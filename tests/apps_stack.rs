//! Integration of the application-workload subsystem across the stack:
//! `nw-apps` stage graphs → DSOC lowering → MultiFlex mapping/DSE →
//! scenario registry → simulated execution with per-stage reports.

use nanowall::scenarios::ScenarioRegistry;
use nw_apps::{modem_pipeline, video_pipeline, ModemParams, VideoParams};
use nw_mapping::{
    pareto_front, CostModel, DsePoint, GreedyLoadMapper, Mapper, MappingProblem, PeSlot,
    RandomMapper, SimulatedAnnealingMapper,
};
use nw_types::NodeId;

/// Builds a mapping problem for a workload app over a ring-ish hop matrix.
fn problem_for(app: nw_dsoc::Application, n_pes: usize) -> MappingProblem {
    let entries = app.entries().len();
    let hops: Vec<Vec<f64>> = (0..n_pes)
        .map(|a| {
            (0..n_pes)
                .map(|b| {
                    let d = (a as i64 - b as i64).unsigned_abs() as f64;
                    d.min(n_pes as f64 - d)
                })
                .collect()
        })
        .collect();
    MappingProblem::new(
        app,
        vec![0.001; entries],
        (0..n_pes).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
        hops,
    )
    .expect("workload apps form valid mapping problems")
}

/// The MultiFlex mappers place the new pipelines, and the optimized
/// mappers beat the random baseline on the analytic cost.
#[test]
fn mappers_place_the_new_pipelines() {
    let video = video_pipeline(&VideoParams::default());
    let modem = modem_pipeline(&ModemParams::default());
    for (name, spec) in [("video", &video.spec), ("modem", &modem.spec)] {
        let (app, _) = spec.to_application().expect("valid lowering");
        let problem = problem_for(app, 7);
        let random = RandomMapper { seed: 11 }.map(&problem);
        let greedy = GreedyLoadMapper.map(&problem);
        let sa = SimulatedAnnealingMapper {
            iterations: 8_000,
            ..Default::default()
        }
        .map(&problem);
        for m in [&random, &greedy, &sa] {
            assert_eq!(m.placement.len(), problem.n_objects(), "{name}");
            assert!(m.placement.iter().all(|&p| p < problem.n_pes()), "{name}");
            let check = CostModel::default().evaluate(&problem, &m.placement);
            assert!((check.total - m.cost.total).abs() < 1e-9, "{name}");
        }
        assert!(sa.cost.total <= greedy.cost.total + 1e-9, "{name}");
        assert!(greedy.cost.total <= random.cost.total + 1e-9, "{name}");
    }
}

/// DSE over PE pools for the video pipeline: larger pools never look
/// worse on the analytic bottleneck, and the Pareto front is consistent.
#[test]
fn dse_sweeps_the_video_pipeline() {
    let video = video_pipeline(&VideoParams::default());
    let (app, _) = video.spec.to_application().expect("valid lowering");
    let mut points = Vec::new();
    let mut costs = Vec::new();
    for n_pes in [3usize, 5, 7, 9] {
        let problem = problem_for(app.clone(), n_pes);
        let mapping = GreedyLoadMapper.map(&problem);
        costs.push(mapping.cost.bottleneck_load);
        points.push(DsePoint::new(
            format!("video-{n_pes}pe"),
            n_pes as f64,
            mapping.cost.total,
        ));
    }
    // More PEs → no worse bottleneck load under greedy balancing.
    for w in costs.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "{costs:?}");
    }
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    for w in front.windows(2) {
        assert!(points[w[0]].resource <= points[w[1]].resource);
    }
}

/// The registry's standard rigs execute and report per-stage activity for
/// every object of every workload.
#[test]
fn registry_rigs_report_per_stage_activity() {
    let reg = ScenarioRegistry::standard();
    for name in ["video", "modem", "crypto"] {
        let mut rig = reg.build(name, true).expect("registered scenario");
        let report = rig.run(30_000);
        assert_eq!(
            report.object_invocations.len(),
            rig.app.objects().len(),
            "{name}"
        );
        // Entry stages always fire; interior stages follow.
        let active = report.object_invocations.iter().filter(|&&n| n > 0).count();
        assert!(
            active >= rig.app.objects().len() / 2,
            "{name}: only {active} of {} stages active",
            rig.app.objects().len()
        );
        assert!(report.io[0].transmitted > 0, "{name} must deliver items");
        assert!(report.energy.0 > 0.0, "{name} must account energy");
    }
}
