//! Workspace facade for the nanowall MP-SoC reproduction.
//!
//! This crate exists to host the runnable [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and cross-crate integration tests of the workspace; the actual library
//! surface lives in [`nanowall`] and the substrate crates it re-exports.

pub use nanowall;
